"""Flat interval-encoded hierarchy store (the XPath-accelerator trick).

Every tree the repo serves queries from -- the streaming q-digest's
sparse dyadic forest, the batch q-digest's leaf partition, the radix
hierarchies, the kd partition trees -- is re-encoded here as one flat
table of *intervals*: contiguous NumPy columns ``pre``, ``post``,
``level``, ``lo``, ``hi`` and ``mass``, one row per materialized node.
``[lo, hi]`` is the key range a node covers and ``pre``/``post`` are
its pre/post-order ranks, so the classic tree predicates compile to
pure range comparisons (Grust's XPath accelerator):

* ``v`` is a descendant-or-self of ``u``  iff  ``pre[v] >= pre[u] and
  post[v] <= post[u]`` -- equivalently ``lo[v] >= lo[u] and
  hi[v] <= hi[u]`` for radix trees;
* the nodes containing a key ``x`` (the root-to-leaf path) are exactly
  the rows with ``lo <= x <= hi``.

Rows are kept in the canonical order ``(level, lo, pre)``: each level
is a sorted run, so subtree and containment lookups become
``searchsorted`` range scans and a range-sum battery folds per level
with one prefix-sum difference per query (see :meth:`IntervalTable.
range_scan`).  The same columns persist unchanged into the SQLite
pushdown backend (:mod:`repro.backends.pushdown`) and ship over the
distributed wire (codec tag ``interval-table``), so the in-memory
kernels, the out-of-core backend and the transport all share one
representation.  Encoding, invariants and the SQL shapes are specified
in ``INTERVALS.md`` next to this module.

The batched scan kernel avoids per-level binary searches over the
battery: the battery's bounds are sorted once (cached on the
:class:`~repro.structures.ranges.QueryPlan` via ``sorted_1d``), each
level's cell run is located by counting *cells* into the sorted bounds
(``searchsorted`` over the handful of cells, then a ``bincount`` /
``cumsum`` inversion), and the resulting gather positions plus the
straddling-cell contributions are compiled once per (table, battery)
pair -- a repeat battery replays pure gathers and adds.  Answers are
bit-identical to the retained per-depth loop kernels (pinned in
``tests/test_interval_store.py``).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Kinds: how ``mass`` relates to the tree.
#:
#: * ``sparse`` -- each item's weight lives in exactly one node (the
#:   streaming q-digest); summing across levels is meaningful.
#: * ``aggregate`` -- every node carries the total weight of its
#:   subtree (hierarchy rollups, kd nodes); queries use one level.
#: * ``leaves`` -- a disjoint leaf partition (batch q-digest).
KIND_SPARSE = "sparse"
KIND_AGGREGATE = "aggregate"
KIND_LEAVES = "leaves"
_KINDS = (KIND_SPARSE, KIND_AGGREGATE, KIND_LEAVES)


def flat_kernels_default() -> bool:
    """Module-wide default for the flat-kernel flag.

    ``REPRO_FLAT_KERNELS=0`` retains the historical pointer-path
    kernels everywhere (the per-instance ``flat_kernel`` attribute
    overrides in either direction).
    """
    return os.environ.get("REPRO_FLAT_KERNELS", "1").lower() not in (
        "0", "false", "off"
    )


def use_flat(summary) -> bool:
    """Whether ``summary`` should use the flat interval-table kernels."""
    flag = getattr(summary, "flat_kernel", None)
    if flag is None:
        return flat_kernels_default()
    return bool(flag)


def _synth_pre_post(
    level: np.ndarray, lo: np.ndarray, hi: np.ndarray, height: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Arithmetic pre/post ranks for 1-D radix/dyadic interval trees.

    For a node covering ``[lo, hi]`` at depth ``d`` in a tree of height
    ``H``: ``pre = lo*(H+1) + d`` and ``post = (hi+1)*(H+1) - d``.
    Entering a child strictly increases ``pre`` and strictly decreases
    ``post`` (same ``lo``/``hi`` but deeper), and disjoint subtrees
    order correctly, so the encoding satisfies the accelerator
    predicates without walking any tree.
    """
    scale = np.int64(height + 1)
    pre = lo * scale + level
    post = (hi + np.int64(1)) * scale - level
    return pre, post


class IntervalTable:
    """A tree of key intervals as contiguous sorted NumPy columns.

    Parameters
    ----------
    level:
        ``(n,)`` int64 node depths (root = 0).
    lo, hi:
        ``(n,)`` or ``(n, d)`` int64 inclusive key bounds per node.
    mass:
        ``(n,)`` float64 node weights (see the kind constants).
    pre, post:
        Optional explicit pre/post-order ranks (required for
        multi-dimensional tables; synthesized arithmetically for 1-D).
    kind:
        One of ``"sparse"`` / ``"aggregate"`` / ``"leaves"``.
    height:
        Tree height (max level); defaults to ``level.max()``.

    Rows are stored in the canonical ``(level, lo[:, 0], pre)`` order;
    all query kernels and the pushdown backend rely on it.
    """

    __slots__ = (
        "pre", "post", "level", "lo", "hi", "mass", "kind", "height",
        "level_values", "level_starts", "level_spans",
        "_prefix", "_cells", "_scan_memo", "_leaf_memo",
    )

    def __init__(
        self,
        level,
        lo,
        hi,
        mass,
        *,
        pre=None,
        post=None,
        kind: str = KIND_SPARSE,
        height: Optional[int] = None,
    ):
        if kind not in _KINDS:
            raise ValueError(f"unknown interval-table kind: {kind!r}")
        level = np.ascontiguousarray(level, dtype=np.int64)
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        if lo.ndim == 1:
            lo = lo.reshape(-1, 1)
            hi = hi.reshape(-1, 1)
        mass = np.ascontiguousarray(mass, dtype=float)
        n = level.shape[0]
        if lo.shape != hi.shape or lo.shape[0] != n or mass.shape[0] != n:
            raise ValueError("interval-table columns disagree on length")
        if height is None:
            height = int(level.max()) if n else 0
        if pre is None or post is None:
            if lo.shape[1] != 1:
                raise ValueError(
                    "multi-dimensional tables need explicit pre/post ranks"
                )
            pre, post = _synth_pre_post(level, lo[:, 0], hi[:, 0], height)
        pre = np.ascontiguousarray(pre, dtype=np.int64)
        post = np.ascontiguousarray(post, dtype=np.int64)
        order = np.lexsort((pre, lo[:, 0] if n else pre, level))
        self.level = level[order]
        self.lo = np.ascontiguousarray(lo[order])
        self.hi = np.ascontiguousarray(hi[order])
        self.mass = mass[order]
        self.pre = pre[order]
        self.post = post[order]
        self.kind = kind
        self.height = int(height)
        # Per-level layout: levels present (ascending), their row
        # ranges, and -- when every row of a level shares one span --
        # the level's cell width (-1 marks a mixed-span level, which
        # the dyadic scan kernel refuses).
        if n:
            values, starts = np.unique(self.level, return_index=True)
            starts = np.concatenate((starts, [n]))
        else:
            values = np.zeros(0, dtype=np.int64)
            starts = np.zeros(1, dtype=np.int64)
        self.level_values = values
        self.level_starts = starts.astype(np.int64)
        spans = self.hi[:, 0] - self.lo[:, 0] + 1
        level_spans = np.empty(values.shape[0], dtype=np.int64)
        for j in range(values.shape[0]):
            chunk = spans[starts[j]:starts[j + 1]]
            level_spans[j] = chunk[0] if (chunk == chunk[0]).all() else -1
        self.level_spans = level_spans
        self._prefix = None
        self._cells = None
        self._scan_memo = None
        self._leaf_memo = None

    # ------------------------------------------------------------------
    # Basic shape / accounting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.level.shape[0]

    @property
    def dims(self) -> int:
        """Key dimensionality."""
        return self.lo.shape[1]

    @property
    def nbytes(self) -> int:
        """Resident bytes of the core columns (RAM-budget accounting)."""
        return (
            self.pre.nbytes + self.post.nbytes + self.level.nbytes
            + self.lo.nbytes + self.hi.nbytes + self.mass.nbytes
        )

    @property
    def total(self) -> float:
        """Total mass across rows."""
        return float(self.mass.sum())

    def equals(self, other: "IntervalTable") -> bool:
        """Exact structural equality (columns, kind, height)."""
        return (
            isinstance(other, IntervalTable)
            and self.kind == other.kind
            and self.height == other.height
            and self.lo.shape == other.lo.shape
            and bool(np.array_equal(self.level, other.level))
            and bool(np.array_equal(self.lo, other.lo))
            and bool(np.array_equal(self.hi, other.hi))
            and bool(np.array_equal(self.pre, other.pre))
            and bool(np.array_equal(self.post, other.post))
            and bool(np.array_equal(self.mass, other.mass))
        )

    # ------------------------------------------------------------------
    # Encoders
    # ------------------------------------------------------------------
    @classmethod
    def from_dyadic_nodes(
        cls, bits: int, nodes: np.ndarray, counts: np.ndarray
    ) -> "IntervalTable":
        """Encode a heap-numbered sparse dyadic node set (streaming
        q-digest): node ``v`` at depth ``d = floor(log2 v)`` covers
        ``[(v - 2^d) * 2^(bits-d), ...]``."""
        nodes = np.asarray(nodes, dtype=np.int64)
        counts = np.asarray(counts, dtype=float)
        # Depth = bit length - 1, via exact integer halving (no float
        # log); same computation as the retained per-depth kernel.
        remaining = nodes.copy()
        depths = np.zeros(nodes.shape[0], dtype=np.int64)
        for shift in (32, 16, 8, 4, 2, 1):
            big = remaining >= np.int64(1) << shift
            depths[big] += shift
            remaining[big] >>= shift
        spans = np.int64(1) << (np.int64(bits) - depths)
        lo = (nodes - (np.int64(1) << depths)) * spans
        hi = lo + spans - 1
        return cls(
            depths, lo, hi, counts, kind=KIND_SPARSE, height=int(bits)
        )

    @classmethod
    def from_leaves(
        cls, lows: np.ndarray, highs: np.ndarray, weights: np.ndarray
    ) -> "IntervalTable":
        """Encode a (possibly multi-dimensional) leaf partition.

        All rows land on level 0 with insertion-order pre/post ranks,
        so the canonical sort is a stable sort by ``lo`` -- exactly the
        batch q-digest's historical sorted-leaf order.
        """
        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        if lows.ndim == 1:
            lows = lows.reshape(-1, 1)
            highs = highs.reshape(-1, 1)
        n = lows.shape[0]
        ranks = np.arange(n, dtype=np.int64)
        return cls(
            np.zeros(n, dtype=np.int64), lows, highs,
            np.asarray(weights, dtype=float),
            pre=ranks, post=ranks, kind=KIND_LEAVES, height=0,
        )

    @classmethod
    def from_hierarchy(
        cls,
        hierarchy,
        keys: np.ndarray,
        weights: np.ndarray,
        max_depth: Optional[int] = None,
    ) -> "IntervalTable":
        """Per-level rollups of weighted keys over a radix hierarchy.

        One row per induced node per level ``0..max_depth`` (default:
        the leaf depth), each carrying its subtree's total weight --
        the drilldown store: :meth:`range_scan` at the leaf level is
        exact, shallower levels answer subtree masses directly.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        weights = np.asarray(weights, dtype=float).reshape(-1)
        if keys.shape[0] != weights.shape[0]:
            raise ValueError("keys and weights disagree on length")
        depth = hierarchy.depth if max_depth is None else int(max_depth)
        if not 0 <= depth <= hierarchy.depth:
            raise ValueError("max_depth outside the hierarchy")
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_w = weights[order]
        levels: List[np.ndarray] = []
        los: List[np.ndarray] = []
        his: List[np.ndarray] = []
        masses: List[np.ndarray] = []
        for d in range(depth + 1):
            span = np.int64(hierarchy.span(d))
            nodes = sorted_keys // span
            cuts = np.flatnonzero(np.diff(nodes)) + 1
            starts = np.concatenate(([0], cuts))
            sums = np.add.reduceat(sorted_w, starts) if nodes.size else (
                np.zeros(0)
            )
            uniq = nodes[starts] if nodes.size else nodes
            levels.append(np.full(uniq.shape[0], d, dtype=np.int64))
            los.append(uniq * span)
            his.append(uniq * span + span - 1)
            masses.append(np.asarray(sums, dtype=float))
        return cls(
            np.concatenate(levels), np.concatenate(los),
            np.concatenate(his), np.concatenate(masses),
            kind=KIND_AGGREGATE, height=depth,
        )

    @classmethod
    def from_kd(cls, root) -> "IntervalTable":
        """Encode a kd partition tree (every node, internal and leaf).

        ``pre``/``post`` are the DFS entry/exit ranks; ``lo``/``hi``
        are the ``(n, d)`` node boxes and ``mass`` each node's subtree
        weight (kd nodes are aggregates).
        """
        rows: List[Tuple[int, int, int, Tuple, Tuple, float]] = []
        pre_counter = 0
        post_counter = 0
        # (node, depth, child iterator state) -- iterative DFS so deep
        # trees cannot blow the recursion limit.
        stack = [(root, 0, False, None)]
        pre_of: Dict[int, int] = {}
        while stack:
            node, depth, visited, slot = stack.pop()
            if not visited:
                pre_of[id(node)] = pre_counter
                pre_counter += 1
                stack.append((node, depth, True, len(rows)))
                rows.append(None)  # placeholder until exit rank known
                for child in (node.right, node.left):
                    if child is not None:
                        stack.append((child, depth + 1, False, None))
            else:
                rows[slot] = (
                    pre_of[id(node)], post_counter, depth,
                    tuple(int(v) for v in node.box.lows),
                    tuple(int(v) for v in node.box.highs),
                    float(node.mass),
                )
                post_counter += 1
        pre = np.asarray([r[0] for r in rows], dtype=np.int64)
        post = np.asarray([r[1] for r in rows], dtype=np.int64)
        level = np.asarray([r[2] for r in rows], dtype=np.int64)
        lo = np.asarray([r[3] for r in rows], dtype=np.int64)
        hi = np.asarray([r[4] for r in rows], dtype=np.int64)
        mass = np.asarray([r[5] for r in rows], dtype=float)
        return cls(
            level, lo, hi, mass, pre=pre, post=post,
            kind=KIND_AGGREGATE, height=int(level.max()) if len(rows) else 0,
        )

    # ------------------------------------------------------------------
    # Tree predicates (pre/post range tests)
    # ------------------------------------------------------------------
    def descendant_mask(self, row: int) -> np.ndarray:
        """Boolean mask of descendants-or-self of ``row`` -- the
        accelerator window ``pre >= pre[row] and post <= post[row]``."""
        return (self.pre >= self.pre[row]) & (self.post <= self.post[row])

    def subtree_mass(self, row: int) -> float:
        """Total mass under ``row`` (its own row included)."""
        if self.kind == KIND_AGGREGATE:
            return float(self.mass[row])
        return float(self.mass[self.descendant_mask(row)].sum())

    def ancestor_rows(self, key: Sequence[int]) -> np.ndarray:
        """Rows whose interval contains ``key`` (the root-to-leaf
        path), shallowest first -- a pure containment range scan."""
        point = np.asarray(key, dtype=np.int64).reshape(1, -1)
        if point.shape[1] != self.dims:
            raise ValueError("key dimensionality mismatch")
        mask = ((self.lo <= point) & (self.hi >= point)).all(axis=1)
        return np.flatnonzero(mask)

    def node_row(self, level: int, lo: int) -> Optional[int]:
        """Canonical-order row of the node at ``(level, lo)``, if any."""
        j = int(np.searchsorted(self.level_values, level))
        if j == self.level_values.shape[0] or self.level_values[j] != level:
            return None
        start, end = self.level_starts[j], self.level_starts[j + 1]
        pos = start + np.searchsorted(self.lo[start:end, 0], lo)
        if pos < end and self.lo[pos, 0] == lo:
            return int(pos)
        return None

    # ------------------------------------------------------------------
    # Range-sum kernels
    # ------------------------------------------------------------------
    def _ensure_prefix(self) -> np.ndarray:
        """Concatenated per-level exclusive prefix sums of ``mass``.

        Level ``j`` (rows ``[s_j, e_j)``) owns prefix positions
        ``[s_j + j, e_j + j]`` -- each level contributes one extra
        leading ``0.0``, so a run inside a level differences to the
        same floats as a standalone per-level ``cumsum`` (bit-identical
        to the retained per-depth kernel's prefixes).
        """
        if self._prefix is None:
            parts = []
            starts = self.level_starts
            for j in range(self.level_values.shape[0]):
                chunk = self.mass[starts[j]:starts[j + 1]]
                parts.append(np.concatenate(([0.0], np.cumsum(chunk))))
            self._prefix = (
                np.concatenate(parts) if parts else np.zeros(1)
            )
        return self._prefix

    def _ensure_cells(self) -> np.ndarray:
        """Per-row cell index ``lo // span(level)`` (1-D tables)."""
        if self._cells is None:
            spans = self.level_spans[
                np.searchsorted(self.level_values, self.level)
            ]
            self._cells = self.lo[:, 0] // spans
        return self._cells

    def scannable(self) -> bool:
        """Whether the dyadic scan kernel applies: 1-D and every level
        a uniform-span sorted run."""
        return self.dims == 1 and bool((self.level_spans > 0).all())

    def leaves_disjoint(self) -> bool:
        """Whether rows are pairwise-disjoint sorted 1-D intervals."""
        if self.dims != 1 or self.level_values.shape[0] > 1:
            return False
        lo = self.lo[:, 0]
        hi = self.hi[:, 0]
        return lo.shape[0] <= 1 or bool((hi[:-1] < lo[1:]).all())

    def range_scan(self, plan, levels: Optional[Sequence[int]] = None):
        """Battery range sums over the sorted per-level cell runs.

        ``plan`` is a :class:`~repro.structures.ranges.QueryPlan` (or
        any object with ``bounds`` and ``sorted_1d()``); returns the
        per-box sums in ``plan.bounds`` order.  For ``sparse`` tables
        all levels fold (each item's weight lives in one node); for
        ``aggregate`` tables the scan restricts to the deepest level
        unless ``levels`` selects others.  Straddling cells contribute
        their overlapped span fraction, exactly like the scalar
        ``range_sum`` path.  The compiled scan -- gather positions and
        straddler contributions -- is memoized per battery, so a
        repeated battery replays pure prefix gathers and adds.
        """
        if not self.scannable():
            raise ValueError(
                "range_scan needs a 1-D table with uniform-span levels"
            )
        if levels is None and self.kind == KIND_AGGREGATE:
            levels = [int(self.level_values[-1])]
        bounds = plan.bounds
        key = (id(plan), None if levels is None else tuple(levels))
        memo = self._scan_memo
        if memo is None or memo[0] != key:
            lo = bounds[:, 0, 0]
            hi = bounds[:, 0, 1]
            memo = (key, self._compile_scan(lo, hi, plan.sorted_1d(),
                                            levels), plan)
            self._scan_memo = memo
        prefix = self._ensure_prefix()
        per_box = np.zeros(bounds.shape[0], dtype=float)
        for pos_lo, pos_hic, lrows, lcontrib, hrows, hcontrib in memo[1]:
            per_box += prefix[pos_hic] - prefix[pos_lo]
            if lrows.size:
                per_box[lrows] += lcontrib
            if hrows.size:
                per_box[hrows] += hcontrib
        return per_box

    def scan_bounds(self, lo: np.ndarray, hi: np.ndarray,
                    levels: Optional[Sequence[int]] = None) -> np.ndarray:
        """:meth:`range_scan` over raw bound arrays (no plan, no memo)."""
        if not self.scannable():
            raise ValueError(
                "range_scan needs a 1-D table with uniform-span levels"
            )
        if levels is None and self.kind == KIND_AGGREGATE:
            levels = [int(self.level_values[-1])]
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        order_lo = np.argsort(lo, kind="stable")
        order_hi = np.argsort(hi, kind="stable")
        compiled = self._compile_scan(
            lo, hi, (order_lo, lo[order_lo], order_hi, hi[order_hi]),
            levels,
        )
        prefix = self._ensure_prefix()
        per_box = np.zeros(lo.shape[0], dtype=float)
        for pos_lo, pos_hic, lrows, lcontrib, hrows, hcontrib in compiled:
            per_box += prefix[pos_hic] - prefix[pos_lo]
            if lrows.size:
                per_box[lrows] += lcontrib
            if hrows.size:
                per_box[hrows] += hcontrib
        return per_box

    def _compile_scan(self, lo, hi, sorted_1d, levels):
        """Compile one battery against the table (see module docstring).

        Per selected level the contained cell run ``[a, b]`` is located
        without per-query binary searches: the level's few cells are
        positioned among the battery's *sorted* bounds, and the
        positions invert to per-query run indices through a
        ``bincount``/``cumsum`` step function.  The two possible
        straddling cells per query are then the rows adjacent to the
        run -- no further searches.  Produced indices and contributions
        are bit-identical to the retained per-depth kernel.
        """
        order_lo, sorted_lo, order_hi, sorted_hi = sorted_1d
        q = lo.shape[0]
        cells = self._ensure_cells()
        starts = self.level_starts
        compiled = []
        if levels is None:
            selected = range(self.level_values.shape[0])
        else:
            selected = [
                int(np.searchsorted(self.level_values, lvl))
                for lvl in levels
            ]
            for j, lvl in zip(selected, levels):
                if (j >= self.level_values.shape[0]
                        or self.level_values[j] != lvl):
                    raise ValueError(f"level {lvl} not in table")
        for j in selected:
            s = self.level_spans[j]
            base = int(starts[j])
            n_j = int(starts[j + 1]) - base
            cells_j = cells[base:base + n_j]
            pbase = base + int(np.searchsorted(self.level_values,
                                               self.level_values[j]))
            # Contained run [a, b] located by counting cells into the
            # sorted battery bounds (t/u are per-cell positions; the
            # bincount/cumsum inverts them to per-query run indices).
            sorted_a = (sorted_lo + s - 1) // s
            sorted_b = (sorted_hi + 1) // s - 1
            t = np.searchsorted(sorted_a, cells_j, side="right")
            u = np.searchsorted(sorted_b, cells_j, side="left")
            f = np.cumsum(np.bincount(t, minlength=q + 1))[:q]
            g = np.cumsum(np.bincount(u, minlength=q + 1))[:q]
            lo_idx = np.empty(q, dtype=np.int64)
            hi_idx = np.empty(q, dtype=np.int64)
            lo_idx[order_lo] = f
            hi_idx[order_hi] = g
            pos_lo = pbase + lo_idx
            pos_hic = pbase + np.maximum(hi_idx, lo_idx)
            # Straddling cells: at most the one holding each endpoint.
            a = (lo + s - 1) // s
            b = (hi + 1) // s - 1
            c_lo = lo // s
            c_hi = hi // s
            lrows, lcontrib = self._straddle(
                lo, hi, s, base, n_j, cells_j, c_lo,
                # Unaligned lo: cell a-1 straddles, just left of the
                # run; aligned narrow (a > b): cell a holds the query.
                np.where(lo % s != 0, lo_idx - 1,
                         np.where(a > b, lo_idx, np.int64(-1))),
            )
            hrows, hcontrib = self._straddle(
                lo, hi, s, base, n_j, cells_j, c_hi,
                np.where(((hi + 1) % s != 0) & (c_hi != c_lo),
                         hi_idx, np.int64(-1)),
            )
            compiled.append(
                (pos_lo, pos_hic, lrows, lcontrib, hrows, hcontrib)
            )
        return compiled

    def _straddle(self, lo, hi, s, base, n_j, cells_j, cand, local_pos):
        """Resolve straddling-cell candidates at local positions.

        ``local_pos`` holds each query's candidate row within the
        level (-1: no candidate); a candidate is real when the row
        exists and its cell equals ``cand``.  Contributions are the
        overlapped span fraction, computed with the exact op order of
        the retained kernel (``mass * overlap / float(span)``).
        """
        valid = (local_pos >= 0) & (local_pos < n_j)
        probe = np.where(valid, local_pos, 0)
        hit = valid & (cells_j[probe] == cand)
        rows = np.flatnonzero(hit)
        if rows.size == 0:
            return rows, np.zeros(0)
        n_lo = cand[rows] * s
        n_hi = n_lo + s - 1
        overlap = np.minimum(hi[rows], n_hi) - np.maximum(lo[rows], n_lo) + 1
        contrib = (
            self.mass[base + local_pos[rows]] * overlap / float(s)
        )
        return rows, contrib

    # ------------------------------------------------------------------
    # Disjoint-leaf kernel (batch q-digest 1-D fast path)
    # ------------------------------------------------------------------
    def _ensure_leaf_arrays(self):
        """Float leaf views for :meth:`leaf_range_sums` (lazy memo)."""
        if self._leaf_memo is None:
            los = self.lo[:, 0].astype(float)
            his = self.hi[:, 0].astype(float)
            volumes = his - los + 1.0
            prefix = np.concatenate(([0.0], np.cumsum(self.mass)))
            self._leaf_memo = (los, his, self.mass, volumes, prefix)
        return self._leaf_memo

    def leaf_range_sums(self, bounds: np.ndarray, mode: str) -> np.ndarray:
        """Prefix-sum range sums over disjoint sorted 1-D leaves.

        The shared implementation of the batch q-digest's sorted-leaf
        fast path: fully-contained leaves are one prefix-sum run, and
        only the two leaves holding the query endpoints can be
        boundary leaves, handled per ``mode`` (``"half"`` /
        ``"uniform"`` / ``"lower"``).  Bit-identical to the retained
        ``QDigestSummary._query_boxes_1d``.
        """
        if not self.leaves_disjoint():
            raise ValueError("leaf_range_sums needs disjoint 1-D leaves")
        los, his, weights, volumes, prefix = self._ensure_leaf_arrays()
        q_lo = bounds[:, 0, 0]
        q_hi = bounds[:, 0, 1]
        first = np.searchsorted(los, q_lo, side="left")
        last = np.searchsorted(his, q_hi, side="right")
        per_box = np.where(last > first, prefix[last] - prefix[first], 0.0)
        if mode == "lower":
            return per_box
        left = np.searchsorted(los, q_lo, side="right") - 1
        right = np.searchsorted(los, q_hi, side="right") - 1
        for cand, endpoint, extra in (
            (left, q_lo, None),
            (right, q_hi, right != left),
        ):
            clamped = np.maximum(cand, 0)
            boundary = (
                (cand >= 0)
                & (his[clamped] >= endpoint)
                & ~((los[clamped] >= q_lo) & (his[clamped] <= q_hi))
            )
            if extra is not None:
                boundary &= extra
            rows = np.flatnonzero(boundary)
            if rows.size == 0:
                continue
            leaf = clamped[rows]
            if mode == "half":
                per_box[rows] += 0.5 * weights[leaf]
            else:  # uniform
                overlap = (
                    np.minimum(his[leaf], q_hi[rows])
                    - np.maximum(los[leaf], q_lo[rows])
                    + 1.0
                )
                per_box[rows] += overlap / volumes[leaf] * weights[leaf]
        return per_box

    # ------------------------------------------------------------------
    # Wire codec hooks (repro.distributed.codec)
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """The table as codec-friendly primitives (bit-exact)."""
        return {
            "kind": self.kind,
            "height": self.height,
            "level": self.level,
            "lo": self.lo,
            "hi": self.hi,
            "mass": self.mass,
            "pre": self.pre,
            "post": self.post,
        }

    @classmethod
    def from_state(cls, state: dict) -> "IntervalTable":
        """Rebuild an interval table from :meth:`to_state` output."""
        lo = np.asarray(state["lo"], dtype=np.int64)
        hi = np.asarray(state["hi"], dtype=np.int64)
        return cls(
            np.asarray(state["level"], dtype=np.int64),
            lo,
            hi,
            np.asarray(state["mass"], dtype=float),
            pre=np.asarray(state["pre"], dtype=np.int64),
            post=np.asarray(state["post"], dtype=np.int64),
            kind=str(state["kind"]),
            height=int(state["height"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IntervalTable(kind={self.kind!r}, rows={len(self)}, "
            f"dims={self.dims}, levels={self.level_values.tolist()})"
        )
