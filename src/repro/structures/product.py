"""Product (multi-dimensional) key domains.

Section 4 of the paper: keys are d-dimensional points whose projection
on each axis is an order or a hierarchy; ranges are axis-parallel boxes
(products of intervals and/or hierarchy nodes).
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.structures.hierarchy import RadixHierarchy
from repro.structures.order import OrderedDomain

Axis = Union[OrderedDomain, RadixHierarchy]


class ProductDomain:
    """A d-dimensional product of per-axis structures.

    Each axis is either an :class:`~repro.structures.order.OrderedDomain`
    or a :class:`~repro.structures.hierarchy.RadixHierarchy`.  Keys are
    integer coordinate tuples; datasets store them as an ``(n, d)``
    array.
    """

    def __init__(self, axes: Sequence[Axis]):
        if not axes:
            raise ValueError("product domain needs at least one axis")
        self._axes = tuple(axes)

    @property
    def axes(self) -> Tuple[Axis, ...]:
        """Per-axis structure objects."""
        return self._axes

    @property
    def dims(self) -> int:
        """Number of dimensions."""
        return len(self._axes)

    @property
    def sizes(self) -> Tuple[int, ...]:
        """Per-axis domain sizes."""
        return tuple(axis.size for axis in self._axes)

    def is_hierarchical(self, axis: int) -> bool:
        """Whether axis ``axis`` carries a hierarchy structure."""
        return isinstance(self._axes[axis], RadixHierarchy)

    def hierarchy(self, axis: int) -> RadixHierarchy:
        """The hierarchy on ``axis`` (raises if the axis is an order)."""
        ax = self._axes[axis]
        if not isinstance(ax, RadixHierarchy):
            raise TypeError(f"axis {axis} has no hierarchy structure")
        return ax

    def validate_coords(self, coords: np.ndarray) -> None:
        """Raise ``ValueError`` on malformed or out-of-domain coordinates."""
        coords = np.asarray(coords)
        if coords.ndim != 2 or coords.shape[1] != self.dims:
            raise ValueError(
                f"coords must have shape (n, {self.dims}), got {coords.shape}"
            )
        for axis, size in enumerate(self.sizes):
            column = coords[:, axis]
            if column.size and (int(column.min()) < 0 or int(column.max()) >= size):
                raise ValueError(f"coordinates out of range on axis {axis}")

    def full_box(self) -> "Box":
        """The box covering the whole domain."""
        from repro.structures.ranges import Box

        return Box(
            lows=tuple(0 for _ in self._axes),
            highs=tuple(size - 1 for size in self.sizes),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProductDomain(axes={self._axes!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, ProductDomain) and self._axes == other._axes

    def __hash__(self) -> int:
        return hash(("ProductDomain", self._axes))


def line_domain(size: int) -> ProductDomain:
    """Convenience: a one-dimensional ordered product domain."""
    return ProductDomain([OrderedDomain(size)])
