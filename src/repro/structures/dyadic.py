"""Canonical dyadic decomposition of intervals and boxes.

A dyadic cell at *depth* ``d`` within a ``bits``-bit domain is an
aligned interval of length ``2**(bits-d)``: exactly a node of the
:class:`~repro.structures.hierarchy.BitHierarchy`.  Any closed interval
``[lo, hi]`` decomposes into at most ``2*bits`` disjoint dyadic cells;
a d-dimensional box decomposes into the product of the per-axis
decompositions.  The Count-Sketch baseline and several tests rely on
these decompositions.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def dyadic_cell_interval(bits: int, depth: int, index: int) -> Tuple[int, int]:
    """Closed interval ``[lo, hi]`` of dyadic cell ``(depth, index)``."""
    span = 1 << (bits - depth)
    lo = index * span
    return lo, lo + span - 1


def dyadic_decompose_interval(lo: int, hi: int, bits: int) -> List[Tuple[int, int]]:
    """Minimal disjoint dyadic cover of closed interval ``[lo, hi]``.

    Returns ``(depth, index)`` pairs with ``depth`` in ``[0, bits]``;
    the cells are returned left to right.  Raises on an empty or
    out-of-domain interval.
    """
    domain = 1 << bits
    if lo > hi:
        raise ValueError("empty interval")
    if lo < 0 or hi >= domain:
        raise ValueError("interval outside domain")
    cells: List[Tuple[int, int]] = []
    position = int(lo)
    end = int(hi)
    while position <= end:
        # Largest aligned cell starting at `position` that fits in [position, end].
        max_by_alignment = position & -position if position else domain
        remaining = end - position + 1
        size = min(max_by_alignment, domain)
        while size > remaining:
            size >>= 1
        depth = bits - size.bit_length() + 1
        cells.append((depth, position >> (bits - depth)))
        position += size
    return cells


def dyadic_decompose_intervals(
    lows: np.ndarray, highs: np.ndarray, bits: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonical dyadic covers of many closed intervals at once.

    The batched counterpart of :func:`dyadic_decompose_interval`: for
    ``q`` intervals ``[lows[i], highs[i]]`` it returns three flat int64
    arrays ``(depths, indices, owners)`` where cell ``k`` is the dyadic
    cell ``(depths[k], indices[k])`` belonging to interval
    ``owners[k]``.  Per interval the emitted cells form exactly the
    scalar function's (unique, minimal) cover; cells are grouped by
    depth, finest level first -- the layout the per-level sketch
    kernels consume.

    Vectorization: the classic bottom-up climb.  Per level, an interval
    emits its left endpoint's cell when that endpoint is odd and its
    right endpoint's cell when that endpoint is even, then both
    endpoints shift up one level -- at most two cells per interval per
    level across all ``q`` intervals in a handful of array ops, so the
    total work is ``O(q * bits)`` with ``bits + 1`` NumPy passes
    instead of ``O(q)`` Python loops.
    """
    lo = np.asarray(lows, dtype=np.int64).copy()
    hi = np.asarray(highs, dtype=np.int64).copy()
    if lo.shape != hi.shape or lo.ndim != 1:
        raise ValueError("lows and highs must be matching 1-D arrays")
    if (lo > hi).any():
        raise ValueError("empty interval")
    if lo.size and (lo.min() < 0 or hi.max() >= (1 << bits)):
        raise ValueError("interval outside domain")
    owners = np.arange(lo.size, dtype=np.int64)
    out_depths: List[np.ndarray] = []
    out_indices: List[np.ndarray] = []
    out_owners: List[np.ndarray] = []
    for depth in range(bits, -1, -1):
        if lo.size == 0:
            break
        emit_lo = (lo & 1) == 1
        if emit_lo.any():
            out_depths.append(np.full(int(emit_lo.sum()), depth))
            out_indices.append(lo[emit_lo])
            out_owners.append(owners[emit_lo])
        lo = lo + emit_lo
        emit_hi = (hi & 1) == 0
        if emit_hi.any():
            out_depths.append(np.full(int(emit_hi.sum()), depth))
            out_indices.append(hi[emit_hi])
            out_owners.append(owners[emit_hi])
        hi = hi - emit_hi
        alive = lo <= hi
        if not alive.all():
            lo, hi, owners = lo[alive], hi[alive], owners[alive]
        lo >>= 1
        hi >>= 1
    if not out_depths:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    return (
        np.concatenate(out_depths),
        np.concatenate(out_indices),
        np.concatenate(out_owners),
    )


def dyadic_decompose_box(box, bits_per_axis) -> List[Tuple[Tuple[int, int], ...]]:
    """Decompose a box into products of per-axis dyadic cells.

    Parameters
    ----------
    box:
        A :class:`~repro.structures.ranges.Box`.
    bits_per_axis:
        Sequence of domain bit-widths, one per axis.

    Returns
    -------
    list of tuples, one per rectangle, each a per-axis ``(depth, index)``
    pair.  The number of rectangles is at most
    ``prod(2 * bits_per_axis)``.
    """
    per_axis = [
        dyadic_decompose_interval(box.lows[a], box.highs[a], bits_per_axis[a])
        for a in range(box.dims)
    ]
    rects: List[Tuple[Tuple[int, int], ...]] = [()]
    for axis_cells in per_axis:
        rects = [rect + (cell,) for rect in rects for cell in axis_cells]
    return rects
