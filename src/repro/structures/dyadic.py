"""Canonical dyadic decomposition of intervals and boxes.

A dyadic cell at *depth* ``d`` within a ``bits``-bit domain is an
aligned interval of length ``2**(bits-d)``: exactly a node of the
:class:`~repro.structures.hierarchy.BitHierarchy`.  Any closed interval
``[lo, hi]`` decomposes into at most ``2*bits`` disjoint dyadic cells;
a d-dimensional box decomposes into the product of the per-axis
decompositions.  The Count-Sketch baseline and several tests rely on
these decompositions.
"""

from __future__ import annotations

from typing import List, Tuple


def dyadic_cell_interval(bits: int, depth: int, index: int) -> Tuple[int, int]:
    """Closed interval ``[lo, hi]`` of dyadic cell ``(depth, index)``."""
    span = 1 << (bits - depth)
    lo = index * span
    return lo, lo + span - 1


def dyadic_decompose_interval(lo: int, hi: int, bits: int) -> List[Tuple[int, int]]:
    """Minimal disjoint dyadic cover of closed interval ``[lo, hi]``.

    Returns ``(depth, index)`` pairs with ``depth`` in ``[0, bits]``;
    the cells are returned left to right.  Raises on an empty or
    out-of-domain interval.
    """
    domain = 1 << bits
    if lo > hi:
        raise ValueError("empty interval")
    if lo < 0 or hi >= domain:
        raise ValueError("interval outside domain")
    cells: List[Tuple[int, int]] = []
    position = int(lo)
    end = int(hi)
    while position <= end:
        # Largest aligned cell starting at `position` that fits in [position, end].
        max_by_alignment = position & -position if position else domain
        remaining = end - position + 1
        size = min(max_by_alignment, domain)
        while size > remaining:
            size >>= 1
        depth = bits - size.bit_length() + 1
        cells.append((depth, position >> (bits - depth)))
        position += size
    return cells


def dyadic_decompose_box(box, bits_per_axis) -> List[Tuple[Tuple[int, int], ...]]:
    """Decompose a box into products of per-axis dyadic cells.

    Parameters
    ----------
    box:
        A :class:`~repro.structures.ranges.Box`.
    bits_per_axis:
        Sequence of domain bit-widths, one per axis.

    Returns
    -------
    list of tuples, one per rectangle, each a per-axis ``(depth, index)``
    pair.  The number of rectangles is at most
    ``prod(2 * bits_per_axis)``.
    """
    per_axis = [
        dyadic_decompose_interval(box.lows[a], box.highs[a], bits_per_axis[a])
        for a in range(box.dims)
    ]
    rects: List[Tuple[Tuple[int, int], ...]] = [()]
    for axis_cells in per_axis:
        rects = [rect + (cell,) for rect in rects for cell in axis_cells]
    return rects
