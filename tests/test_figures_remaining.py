"""Tiny-scale end-to-end runs of the figure functions not covered in
test_harness_figures (fig3b, fig4b, fig4c), plus cross-figure checks."""

import numpy as np
import pytest

from repro.datagen.tickets import TicketConfig, generate_tickets
from repro.experiments.figures import ALL_FIGURES, fig3b, fig4b, fig4c
from repro.experiments.report import render_figure


@pytest.fixture(scope="module")
def tiny_tickets():
    return generate_tickets(TicketConfig(n_combinations=1000), seed=31)


def test_fig3b_runs(tiny_tickets):
    result = fig3b(tiny_tickets, sizes=(60,), methods=("aware", "obliv"))
    assert set(result.series) == {"aware", "obliv"}
    for series in result.series.values():
        assert all(y > 0 for _x, y in series)


def test_fig4b_runs(tiny_tickets):
    result = fig4b(
        tiny_tickets,
        size=120,
        ranges_per_query=4,
        fractions=(0.05, 0.15),
        n_queries=4,
        methods=("aware", "obliv"),
        repeats=1,
    )
    assert "aware" in result.series
    # x values are realized query-weight fractions in (0, 1].
    for x, _y in result.series["aware"]:
        assert 0 < x <= 1


def test_fig4c_runs(tiny_tickets):
    result = fig4c(
        tiny_tickets,
        size=120,
        ranges_per_query=3,
        cell_counts=(30, 10),
        n_queries=4,
        methods=("obliv",),
        repeats=1,
    )
    assert len(result.series["obliv"]) == 2


def test_all_figures_registry_complete():
    assert set(ALL_FIGURES) == {
        "fig2a", "fig2b", "fig2c",
        "fig3a", "fig3b", "fig3c",
        "fig4a", "fig4b", "fig4c",
    }


def test_every_figure_renders(tiny_tickets):
    result = fig3b(tiny_tickets, sizes=(60,), methods=("obliv",))
    text = render_figure(result)
    assert "Figure 3(b)" in text
    assert "obliv" in text
