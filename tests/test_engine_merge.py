"""Merge semantics of the mergeable-summary protocol and the engine.

The statistical contract: folding per-shard VarOpt samples with
``merge`` must preserve Horvitz-Thompson unbiasedness (the second
sampling stage composes with the first by the tower rule; see
``SampleSummary.merge``), be commutative in distribution, and treat an
empty summary as the identity.
"""

import numpy as np
import pytest

from repro.core.estimator import SampleSummary
from repro.core.types import Dataset
from repro.core.varopt import varopt_summary
from repro.engine import build_sharded, fold_merge, registry, shard_dataset
from repro.engine.shard import STRATEGIES, shard_indices
from repro.structures.ranges import Box
from repro.summaries.exact import ExactSummary
from repro.summaries.qdigest import QDigestSummary
from repro.summaries.qdigest_stream import StreamingQDigest
from repro.summaries.wavelet import WaveletSummary


def skewed_dataset(n=2000, seed=5, dims=2):
    rng = np.random.default_rng(seed)
    size = 1 << 16
    coords = rng.integers(0, size, size=(n, dims))
    weights = 1.0 + rng.pareto(1.4, size=n)
    from repro.structures.product import ProductDomain
    from repro.structures.order import OrderedDomain

    domain = ProductDomain([OrderedDomain(size) for _ in range(dims)])
    return Dataset(coords=coords, weights=weights, domain=domain)


def shard_samples(data, k, s, rng):
    shards = shard_dataset(data, k)
    return [varopt_summary(shard, s, rng) for shard in shards]


class TestSampleMerge:
    def test_merged_total_unbiased_over_seeds(self):
        """Merging k=4 shard samples keeps estimate_total within 3 sigma."""
        data = skewed_dataset()
        truth = data.total_weight
        estimates = []
        for seed in range(50):
            rng = np.random.default_rng(seed)
            samples = shard_samples(data, 4, 120, rng)
            merged = SampleSummary.from_shards(samples, s=120, rng=rng)
            estimates.append(merged.estimate_total())
        estimates = np.asarray(estimates)
        sem = max(estimates.std(ddof=1) / np.sqrt(len(estimates)), 1e-9)
        assert abs(estimates.mean() - truth) <= 3.0 * sem + 1e-6 * truth

    def test_merged_box_query_unbiased_over_seeds(self):
        """Range-sum estimates from merged samples are unbiased too."""
        data = skewed_dataset()
        box = Box((0, 0), ((1 << 15) - 1, (1 << 16) - 1))
        truth = float(data.weights[box.contains(data.coords)].sum())
        estimates = []
        for seed in range(50):
            rng = np.random.default_rng(1000 + seed)
            samples = shard_samples(data, 4, 120, rng)
            merged = SampleSummary.from_shards(samples, s=120, rng=rng)
            estimates.append(merged.query(box))
        estimates = np.asarray(estimates)
        sem = estimates.std(ddof=1) / np.sqrt(len(estimates))
        assert abs(estimates.mean() - truth) <= 3.5 * sem

    def test_merge_commutative_in_distribution(self):
        """A.merge(B) and B.merge(A) estimate the same totals."""
        data = skewed_dataset(seed=9)
        box = Box((0, 0), ((1 << 15) - 1, (1 << 16) - 1))
        ab, ba = [], []
        for seed in range(50):
            rng = np.random.default_rng(seed)
            a, b = shard_samples(data, 2, 150, rng)
            ab.append(a.merge(b, s=150, rng=np.random.default_rng(7 + seed))
                      .query(box))
            ba.append(b.merge(a, s=150, rng=np.random.default_rng(7 + seed))
                      .query(box))
        ab, ba = np.asarray(ab), np.asarray(ba)
        pooled_sem = np.sqrt(
            ab.var(ddof=1) / len(ab) + ba.var(ddof=1) / len(ba)
        )
        assert abs(ab.mean() - ba.mean()) <= 3.0 * pooled_sem + 1e-9

    def test_merge_with_empty_is_identity(self):
        data = skewed_dataset(n=500)
        rng = np.random.default_rng(3)
        sample = varopt_summary(data, 80, rng)
        empty = SampleSummary(
            coords=np.empty((0, 2), dtype=np.int64),
            weights=np.empty(0),
            tau=0.0,
        )
        for merged in (sample.merge(empty), empty.merge(sample)):
            np.testing.assert_array_equal(merged.coords, sample.coords)
            np.testing.assert_array_equal(merged.weights, sample.weights)
            assert merged.tau == sample.tau

    def test_merge_threshold_and_size(self):
        """tau* dominates both inputs; size lands at the target."""
        data = skewed_dataset()
        rng = np.random.default_rng(11)
        a, b = shard_samples(data, 2, 100, rng)
        merged = a.merge(b, s=100, rng=rng)
        assert merged.tau >= max(a.tau, b.tau) - 1e-12
        assert abs(merged.size - 100) <= 1  # +-1 from the leftover coin
        # Stored weights are the inputs' adjusted weights.
        assert merged.weights.min() >= min(a.tau, b.tau) - 1e-12

    def test_merge_with_empty_respects_target_size(self):
        """The 'at most s keys' contract holds even for empty shards."""
        data = skewed_dataset(n=500)
        sample = varopt_summary(data, 80, np.random.default_rng(3))
        empty = SampleSummary(
            coords=np.empty((0, 2), dtype=np.int64),
            weights=np.empty(0),
            tau=0.0,
        )
        merged = sample.merge(empty, s=20, rng=np.random.default_rng(4))
        assert abs(merged.size - 20) <= 1
        assert merged.tau >= sample.tau

    def test_from_shards_single_shard_respects_target(self):
        """One oversized shard is still downsampled to s."""
        data = skewed_dataset(n=500)
        sample = varopt_summary(data, 200, np.random.default_rng(5))
        folded = SampleSummary.from_shards(
            [sample], s=50, rng=np.random.default_rng(6)
        )
        assert folded.size <= 50
        # Downsampling keeps unbiasedness (VarOpt exact-total property).
        assert folded.estimate_total() == pytest.approx(
            sample.estimate_total(), rel=1e-9
        )

    def test_downsample_noop_below_target(self):
        data = skewed_dataset(n=200)
        sample = varopt_summary(data, 40, np.random.default_rng(1))
        copy = sample.downsample(100)
        np.testing.assert_array_equal(copy.coords, sample.coords)
        assert copy.tau == sample.tau

    def test_merge_dim_mismatch_raises(self):
        one = SampleSummary(coords=[[1]], weights=[1.0], tau=0.0)
        two = SampleSummary(coords=[[1, 2]], weights=[1.0], tau=0.0)
        with pytest.raises(ValueError):
            one.merge(two)
        with pytest.raises(TypeError):
            one.merge("not a summary")

    def test_len_and_repr(self):
        sample = SampleSummary(coords=[[1, 2], [3, 4]],
                               weights=[1.0, 2.0], tau=0.0)
        assert len(sample) == 2
        text = repr(sample)
        assert "size=2" in text and "dims=2" in text


class TestDedicatedMerges:
    def test_exact_merge_is_exact(self):
        data = skewed_dataset(n=400)
        halves = shard_dataset(data, 2)
        merged = ExactSummary(halves[0]).merge(ExactSummary(halves[1]))
        whole = ExactSummary(data)
        box = Box((0, 0), ((1 << 15) - 1, (1 << 16) - 1))
        assert merged.query(box) == pytest.approx(whole.query(box))
        assert merged.size == data.n

    def test_qdigest_merge_adds_range_sums(self):
        data = skewed_dataset(n=600)
        halves = shard_dataset(data, 2)
        a = QDigestSummary(halves[0], 40)
        b = QDigestSummary(halves[1], 40)
        merged = a.merge(b)
        box = Box((0, 0), ((1 << 16) - 1, (1 << 16) - 1))
        assert merged.query(box) == pytest.approx(a.query(box) + b.query(box))
        assert merged.size == a.size + b.size

    def test_streaming_qdigest_merge(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 1 << 10, size=500)
        a = StreamingQDigest(10, 20)
        b = StreamingQDigest(10, 20)
        for key in keys[:250]:
            a.insert(int(key))
        for key in keys[250:]:
            b.insert(int(key))
        merged = a.merge(b)
        assert merged.total == pytest.approx(a.total + b.total)
        est = merged.range_sum(0, (1 << 10) - 1)
        assert est == pytest.approx(500.0, abs=merged.error_bound())

    def test_wavelet_merge_matches_whole_when_lossless(self):
        """With the full coefficient budget, merge == transform of union."""
        data = skewed_dataset(n=60, dims=1)
        halves = shard_dataset(data, 2)
        budget = 1 << 17  # far above the number of nonzero coefficients
        a = WaveletSummary(halves[0], budget)
        b = WaveletSummary(halves[1], budget)
        merged = a.merge(b)
        whole = WaveletSummary(data, budget)
        box = Box((100,), (50_000,))
        assert merged.query(box) == pytest.approx(whole.query(box))

    def test_sketch_merge_requires_shared_hashes(self):
        """Shared-seed sketches merge; independent hashes refuse."""
        data = skewed_dataset(n=100)
        from repro.summaries.sketch import DyadicSketchSummary

        shared_a = DyadicSketchSummary(data, 64, hash_seed=7)
        shared_b = DyadicSketchSummary(data, 64, hash_seed=7)
        merged = shared_a.merge(shared_b)
        assert merged.size == shared_a.size
        independent = DyadicSketchSummary(
            data, 64, rng=np.random.default_rng(0)
        )
        assert shared_a.mergeable
        with pytest.raises(ValueError, match="hash"):
            shared_a.merge(independent)

    def test_base_summary_merge_unsupported(self):
        data = skewed_dataset(n=100)
        from repro.summaries.base import Summary

        class _Unmergeable(Summary):
            @property
            def size(self):
                return 0

            def query(self, box):
                return 0.0

        stub = _Unmergeable()
        assert not stub.mergeable
        with pytest.raises(NotImplementedError):
            stub.merge(stub)
        assert ExactSummary(data).mergeable


class TestShardingAndEngine:
    def test_shard_indices_partition_rows(self):
        data = skewed_dataset(n=777)
        for strategy in STRATEGIES:
            parts = shard_indices(data, 5, strategy=strategy)
            joined = np.sort(np.concatenate(parts))
            np.testing.assert_array_equal(joined, np.arange(data.n))

    def test_hashed_sharding_is_deterministic_and_balanced(self):
        data = skewed_dataset(n=4000)
        a = shard_indices(data, 8, strategy="hashed", seed=1)
        b = shard_indices(data, 8, strategy="hashed", seed=1)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
        sizes = np.asarray([len(x) for x in a])
        assert sizes.min() > 0.5 * data.n / 8

    def test_build_sharded_serial_matches_interface(self):
        data = skewed_dataset()
        result = build_sharded(
            "obliv", data, 150, np.random.default_rng(0),
            num_shards=4, parallel=False,
        )
        assert not result.used_processes
        assert result.num_shards == 4
        assert abs(result.summary.size - 150) <= 1
        assert result.summary.estimate_total() == pytest.approx(
            data.total_weight, rel=1e-6
        )

    def test_build_sharded_parallel_smoke(self):
        """Process-pool path (degrades to serial where unavailable)."""
        data = skewed_dataset(n=1200)
        result = build_sharded(
            "varopt", data, 100, np.random.default_rng(1), num_shards=3
        )
        assert abs(result.summary.size - 100) <= 1
        assert result.summary.estimate_total() == pytest.approx(
            data.total_weight, rel=1e-6
        )

    def test_build_sharded_accepts_callable(self):
        data = skewed_dataset(n=800)
        result = build_sharded(
            lambda d, s, rng: varopt_summary(d, s, rng),
            data, 90, np.random.default_rng(2), num_shards=3,
        )
        assert not result.used_processes  # callables build serially
        assert abs(result.summary.size - 90) <= 1

    def test_build_sharded_rejects_unmergeable_method(self):
        """Non-mergeable methods fail fast, before any shard builds."""
        data = skewed_dataset(n=400)
        from repro.core.varopt import varopt_summary as _vs

        registry.register(
            "test-unmergeable", lambda d, s, rng: _vs(d, s, rng),
            overwrite=True, mergeable=False,
        )
        try:
            assert not registry.is_mergeable("test-unmergeable")
            with pytest.raises(ValueError, match="mergeable"):
                build_sharded("test-unmergeable", data, 64,
                              np.random.default_rng(0), num_shards=4)
            # A single shard needs no merge, so it is allowed.
            result = build_sharded("test-unmergeable", data, 64,
                                   np.random.default_rng(0), num_shards=1)
            assert result.summary.size > 0
        finally:
            registry._REGISTRY.pop("test-unmergeable", None)
            registry._MERGEABLE.pop("test-unmergeable", None)

    def test_build_sharded_sketch_merges_exactly(self):
        """Shared-seed shard sketches fold to the monolithic sketch."""
        data = skewed_dataset(n=600)
        assert registry.is_mergeable("sketch")
        result = build_sharded("sketch", data, 256,
                               np.random.default_rng(0), num_shards=4,
                               parallel=False)
        mono = registry.build("sketch", data, 256, np.random.default_rng(1))
        box = Box((0, 0), ((1 << 15) - 1, (1 << 16) - 1))
        # Tables are linear, so the fold is exactly the monolithic build.
        assert result.summary.query(box) == pytest.approx(mono.query(box))

    def test_fold_merge_requires_input(self):
        with pytest.raises(ValueError):
            fold_merge([])

    def test_registry_roundtrip(self):
        assert "aware" in registry.available()
        assert "obliv" in registry.available()
        with pytest.raises(KeyError):
            registry.get("no-such-method")
        with pytest.raises(KeyError):
            registry.register("obliv", lambda d, s, rng: None)

        @registry.register("test-tmp-method", overwrite=True)
        def _builder(dataset, s, rng):
            return varopt_summary(dataset, s, rng)

        try:
            data = skewed_dataset(n=300)
            summary = registry.build(
                "test-tmp-method", data, 50, np.random.default_rng(0)
            )
            assert abs(summary.size - 50) <= 1
        finally:
            registry._REGISTRY.pop("test-tmp-method", None)
