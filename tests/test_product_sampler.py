"""Tests for the product-structure aware sampler (Section 4)."""

import numpy as np
import pytest

from repro.aware.product_sampler import (
    product_aware_sample,
    product_aware_summary,
)
from repro.core.discrepancy import box_discrepancy
from repro.core.ipps import ipps_probabilities
from repro.core.varopt import varopt_sample
from repro.structures.ranges import Box


def make_points(seed, n=400, size=1024):
    rng = np.random.default_rng(seed)
    coords = rng.integers(0, size, size=(n, 2))
    weights = 1.0 + rng.pareto(1.2, size=n)
    # Deduplicate to keep IPPS probabilities well defined per key.
    _, first = np.unique(coords, axis=0, return_index=True)
    return coords[first], weights[first]


def random_boxes(seed, k=60, size=1024):
    rng = np.random.default_rng(seed)
    boxes = []
    for _ in range(k):
        x1, x2 = sorted(rng.integers(0, size, size=2).tolist())
        y1, y2 = sorted(rng.integers(0, size, size=2).tolist())
        boxes.append(Box((x1, y1), (x2, y2)))
    return boxes


class TestProductAware:
    def test_exact_sample_size(self):
        coords, weights = make_points(0)
        for s in (10, 40, 100):
            included, tau, _ = product_aware_sample(
                coords, weights, s, np.random.default_rng(1)
            )
            assert included.size == s

    def test_inclusion_probabilities_preserved(self):
        coords = np.array(
            [[0, 0], [0, 1], [1, 0], [1, 1], [2, 2], [3, 3], [2, 3], [3, 2]]
        )
        weights = np.array([5.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0, 1.0])
        p, _ = ipps_probabilities(weights, 4)
        counts = np.zeros(8)
        trials = 6000
        for t in range(trials):
            included, _, _ = product_aware_sample(
                coords, weights, 4, np.random.default_rng(t)
            )
            counts[included] += 1
        np.testing.assert_allclose(counts / trials, p, atol=0.03)

    def test_mean_box_discrepancy_beats_oblivious(self):
        # The Section 4 improvement: averaged over boxes and seeds, the
        # kd-aware sample has smaller discrepancy than oblivious VarOpt.
        coords, weights = make_points(5, n=600)
        s = 60
        boxes = random_boxes(7)
        probs, tau = ipps_probabilities(weights, s)
        aware_total = 0.0
        obliv_total = 0.0
        trials = 25
        for t in range(trials):
            included, _, _ = product_aware_sample(
                coords, weights, s, np.random.default_rng(t)
            )
            mask = np.zeros(len(weights), bool)
            mask[included] = True
            aware_total += np.mean(
                [box_discrepancy(coords, probs, mask, b) for b in boxes]
            )
            included_o, _ = varopt_sample(
                weights, s, np.random.default_rng(t + 10_000)
            )
            mask_o = np.zeros(len(weights), bool)
            mask_o[included_o] = True
            obliv_total += np.mean(
                [box_discrepancy(coords, probs, mask_o, b) for b in boxes]
            )
        assert aware_total < obliv_total

    def test_unbiased_box_estimates(self):
        coords, weights = make_points(2, n=200)
        box = Box((0, 0), (511, 511))
        mask = box.contains(coords)
        truth = weights[mask].sum()
        estimates = []
        for t in range(2500):
            included, tau, _ = product_aware_sample(
                coords, weights, 30, np.random.default_rng(t)
            )
            adj = np.maximum(weights[included], tau)
            in_box = box.contains(coords[included])
            estimates.append(adj[in_box].sum())
        assert np.mean(estimates) == pytest.approx(truth, rel=0.06)

    def test_summary_interface(self, grid_dataset, rng):
        summary = product_aware_summary(grid_dataset, 50, rng)
        assert summary.size == 50
        assert summary.dims == 2

    def test_split_rule_forwarded(self, grid_dataset, rng):
        summary = product_aware_summary(
            grid_dataset, 40, rng, split_rule="midpoint"
        )
        assert summary.size == 40

    def test_all_keys_when_s_large(self):
        coords, weights = make_points(3, n=50)
        included, tau, _ = product_aware_sample(
            coords, weights, 100, np.random.default_rng(0)
        )
        assert included.size == len(weights)
        assert tau == 0.0
