"""Deeper two-pass pipeline properties: the eps-net role of the guide
sample and the per-cell mass bound it induces (Section 5)."""

import numpy as np
import pytest

from repro.core.ipps import ipps_probabilities
from repro.core.types import Dataset
from repro.core.varopt import StreamVarOpt
from repro.structures.hierarchy import BitHierarchy
from repro.structures.product import ProductDomain
from repro.twopass.partitions import KDPartition, OrderPartition
from repro.twopass.two_pass import TwoPassSampler, two_pass_summary


def guide_sample(dataset, size, seed):
    sampler = StreamVarOpt(size, np.random.default_rng(seed))
    for key, weight in dataset.iter_items():
        sampler.feed(key, weight)
    return sampler.sample_items()


class TestCellMassBound:
    """With s' = Omega(s log s), cells have probability mass <= 1 w.h.p."""

    def test_order_partition_cell_masses(self):
        rng0 = np.random.default_rng(0)
        n = 2000
        keys = np.sort(rng0.choice(10**6, size=n, replace=False))
        weights = 1.0 + rng0.pareto(1.2, size=n)
        data = Dataset.one_dimensional(keys, weights, size=10**6)
        s = 50
        probs, tau = ipps_probabilities(weights, s)
        light = probs < 1.0
        guide = guide_sample(data, 5 * s, seed=1)
        part = OrderPartition(
            [key[0] for key, w in guide if w < tau]
        )
        cells = np.array([part.cell_of(int(k)) for k in keys])
        heavy_violations = 0
        for cell in np.unique(cells):
            mass = probs[light & (cells == cell)].sum()
            if mass > 1.0 + 1e-9:
                heavy_violations += 1
        # Most cells obey the bound (the w.h.p. guarantee).
        assert heavy_violations <= 0.1 * np.unique(cells).size

    def test_kd_partition_cell_masses(self, network_small):
        s = 60
        probs, tau = ipps_probabilities(network_small.weights, s)
        guide = guide_sample(network_small, 5 * s, seed=2)
        guide_coords = np.asarray(
            [key for key, w in guide if w < tau], dtype=np.int64
        )
        guide_probs = np.asarray(
            [min(1.0, w / tau) for _k, w in guide if w < tau]
        )
        part = KDPartition(
            guide_coords, guide_probs, domain=network_small.domain
        )
        cells = np.array(
            [part.cell_of(tuple(row)) for row in network_small.coords]
        )
        light = probs < 1.0
        over = 0
        uniq = np.unique(cells)
        for cell in uniq:
            mass = probs[light & (cells == cell)].sum()
            if mass > 2.0:  # generous: guide kd cells hold ~1 unit
                over += 1
        assert over <= 0.25 * uniq.size


class TestEndToEndMoments:
    def test_two_pass_inclusion_probabilities(self):
        # End-to-end: the two-pass pipeline preserves per-key IPPS
        # inclusion probabilities (it is a VarOpt construction).
        rng0 = np.random.default_rng(3)
        n = 12
        keys = np.arange(n)
        weights = np.array(
            [8.0, 7.0, 5.0, 4.0, 3.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        )
        data = Dataset.one_dimensional(keys, weights, size=64)
        s = 5
        p, tau = ipps_probabilities(weights, s)
        counts = np.zeros(n)
        trials = 4000
        for t in range(trials):
            summary = two_pass_summary(data, s, np.random.default_rng(t))
            for (k,) in map(tuple, summary.coords):
                counts[k] += 1
        np.testing.assert_allclose(counts / trials, p, atol=0.04)

    def test_two_pass_repeatable_with_same_rng(self, grid_dataset):
        a = two_pass_summary(grid_dataset, 30, np.random.default_rng(7))
        b = two_pass_summary(grid_dataset, 30, np.random.default_rng(7))
        assert sorted(map(tuple, a.coords)) == sorted(map(tuple, b.coords))

    def test_partition_exposed_for_inspection(self, grid_dataset):
        sampler = TwoPassSampler(25, np.random.default_rng(0))
        sampler.fit(grid_dataset)
        assert sampler.last_partition is not None
        assert hasattr(sampler.last_partition, "cell_of")
