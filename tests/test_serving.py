"""Async serving tier: dispatcher backpressure, service flushing, parity.

Covers the serving-tier contracts end to end:

* :class:`AsyncDispatcher` -- per-worker queue bounds, explicit
  :class:`Backpressure` shedding, FIFO reply matching;
* :class:`ServingFrontend` -- deadline- and size-triggered flushes,
  admission control (queue-full and per-tenant fair-share sheds),
  cross-supplier fan-out sums, per-query fault isolation;
* async/sync parity -- concurrent ``distributed_build`` calls through
  one coordinator stay bit-identical to ``build_sharded``, and their
  per-build wire accounting sums exactly to the transport's counters.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.types import Dataset
from repro.distributed import (
    AsyncDispatcher,
    Backpressure,
    Coordinator,
    InProcessTransport,
    OverloadError,
    ServingFrontend,
    distributed_build,
)
from repro.distributed.codec import encode_message
from repro.engine.builder import build_sharded
from repro.engine.registry import build
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box

SIZE = 200
DOMAIN = 1 << 12


def dataset(seed=42, n=3000):
    rng = np.random.default_rng(seed)
    return Dataset.one_dimensional(
        rng.integers(0, DOMAIN, size=n),
        1.0 + rng.pareto(1.4, size=n),
        DOMAIN,
    )


def battery(step=DOMAIN // 8):
    return [Box((lo,), (lo + DOMAIN // 3,))
            for lo in range(0, DOMAIN // 2, step)]


class StaticSupplier:
    """Frozen summaries behind the snapshot-supplier protocol."""

    def __init__(self, summaries):
        self._summaries = summaries
        self.version = 0

    def snapshot(self, method):
        return self._summaries[method]

    @property
    def methods(self):
        return list(self._summaries)


def exact_supplier(data):
    return StaticSupplier(
        {"exact": build("exact", data, SIZE, np.random.default_rng(1))}
    )


# ----------------------------------------------------------------------
# AsyncDispatcher: bounded queues, backpressure, FIFO replies
# ----------------------------------------------------------------------

class TestDispatcherBackpressure:
    def _gated(self, gate):
        """Echo handler that blocks until ``gate`` is set."""
        def factory(worker_id):
            def handler(frame):
                gate.wait(5.0)
                return frame
            return handler
        return factory

    def test_max_pending_bound_sheds(self):
        gate = threading.Event()
        transport = InProcessTransport(handler_factory=self._gated(gate))
        transport.start(1)
        dispatcher = AsyncDispatcher(
            transport, max_inflight=1, max_pending=4
        )
        try:
            futures = [
                dispatcher.submit(
                    0, {"type": "ping", "i": i}, block=False
                )
                for i in range(4)
            ]
            # The 5th submission finds the queue at its bound.
            with pytest.raises(Backpressure):
                dispatcher.submit(0, {"type": "ping", "i": 4}, block=False)
            assert dispatcher.queue_depth(0) == 4
            assert dispatcher.stats.rejected == 1
            # block=True respects its timeout on a still-full queue.
            with pytest.raises(Backpressure):
                dispatcher.submit(
                    0, {"type": "ping", "i": 5}, timeout=0.05
                )
            gate.set()
            replies = [future.result(5.0) for future in futures]
            assert [reply["i"] for reply in replies] == [0, 1, 2, 3]
            assert dispatcher.stats.backpressure_waits >= 1
        finally:
            gate.set()
            dispatcher.stop()
            transport.stop()

    def test_fifo_reply_matching(self):
        transport = InProcessTransport(
            handler_factory=lambda worker_id: (lambda frame: frame)
        )
        transport.start(2)
        dispatcher = AsyncDispatcher(
            transport, max_inflight=2, max_pending=64
        )
        try:
            futures = [
                dispatcher.submit(i % 2, {"type": "ping", "i": i})
                for i in range(20)
            ]
            replies = [future.result(5.0) for future in futures]
            assert [reply["i"] for reply in replies] == list(range(20))
            assert dispatcher.stats.completed == 20
            assert dispatcher.stats.orphans == 0
        finally:
            dispatcher.stop()
            transport.stop()

    def test_queue_depth_never_exceeds_bound(self):
        release = threading.Event()

        def factory(worker_id):
            def handler(frame):
                release.wait(0.002)
                return frame
            return handler

        transport = InProcessTransport(handler_factory=factory)
        transport.start(1)
        dispatcher = AsyncDispatcher(
            transport, max_inflight=1, max_pending=8
        )
        try:
            futures = []
            for i in range(50):
                futures.append(
                    dispatcher.submit(0, {"type": "ping", "i": i})
                )
            for future in futures:
                future.result(10.0)
            assert dispatcher.stats.max_queue_depth <= 8
        finally:
            release.set()
            dispatcher.stop()
            transport.stop()


# ----------------------------------------------------------------------
# ServingFrontend: flush triggers, admission control, fan-out
# ----------------------------------------------------------------------

class TestServingFlush:
    def test_deadline_flush_resolves_without_filling_batch(self):
        with ServingFrontend(
            exact_supplier(dataset()), batch_size=10_000,
            max_delay_ms=5.0,
        ) as service:
            start = time.monotonic()
            value = service.submit("exact", battery()[0]).result(5.0)
            elapsed = time.monotonic() - start
            stats = service.stats()
        assert value > 0
        assert elapsed < 2.0  # deadline-bounded, far below any fill
        assert stats["flushes_deadline"] >= 1
        assert stats["flushes_size"] == 0

    def test_size_flush_fires_before_deadline(self):
        with ServingFrontend(
            exact_supplier(dataset()), batch_size=4,
            max_delay_ms=60_000.0,  # deadline effectively never
        ) as service:
            handles = [
                service.submit("exact", query)
                for query in battery()[:4]
            ]
            values = [handle.result(5.0) for handle in handles]
            stats = service.stats()
        assert all(value > 0 for value in values)
        assert stats["flushes_size"] >= 1
        assert stats["flushes_deadline"] == 0
        assert stats["batch_hist"].get(4) == 1

    def test_answers_match_direct_queries(self):
        data = dataset()
        supplier = exact_supplier(data)
        direct = supplier.snapshot("exact").query_many(battery())
        with ServingFrontend(
            supplier, batch_size=8, max_delay_ms=2.0
        ) as service:
            handles = [
                service.submit("exact", query, tenant=f"t{i % 3}")
                for i, query in enumerate(battery())
            ]
            served = [handle.result(5.0) for handle in handles]
        np.testing.assert_allclose(served, direct, rtol=1e-12)

    def test_fanout_sums_across_suppliers(self):
        rng = np.random.default_rng(7)
        coords = rng.integers(0, DOMAIN, size=4000)
        weights = 1.0 + rng.pareto(1.4, size=4000)
        halves = [
            Dataset.one_dimensional(
                coords[half::2], weights[half::2], DOMAIN
            )
            for half in (0, 1)
        ]
        whole = Dataset.one_dimensional(coords, weights, DOMAIN)
        direct = exact_supplier(whole).snapshot("exact").query_many(
            battery()
        )
        with ServingFrontend(
            [exact_supplier(half) for half in halves],
            batch_size=8, max_delay_ms=2.0,
        ) as service:
            handles = [
                service.submit("exact", query) for query in battery()
            ]
            served = [handle.result(5.0) for handle in handles]
        np.testing.assert_allclose(served, direct, rtol=1e-9)

    def test_fault_isolation_pins_bad_query(self):
        good = battery()[0]
        bad = Box((0, 0), (5, 5))  # 2-D query against a 1-D domain
        with ServingFrontend(
            exact_supplier(dataset()), batch_size=64, start=False
        ) as service:
            first = service.submit("exact", good)
            broken = service.submit("exact", bad)
            second = service.submit("exact", good)
            service.flush()
            assert first.result(1.0) == second.result(1.0) > 0
            with pytest.raises(Exception):
                broken.result(1.0)


class TestAdmissionControl:
    def test_queue_full_sheds(self):
        with ServingFrontend(
            exact_supplier(dataset()), batch_size=64,
            max_pending=10, tenant_share=1.0, start=False,
        ) as service:
            for i in range(10):
                service.submit("exact", battery()[0], tenant=f"t{i}")
            with pytest.raises(OverloadError):
                service.submit("exact", battery()[0], tenant="t-extra")
            stats = service.stats()
            assert stats["shed"] == 1
            assert stats["pending"] == 10
            # Flushing frees admission slots again.
            assert service.flush() == 10
            service.submit("exact", battery()[0], tenant="t-extra")

    def test_tenant_fair_share(self):
        with ServingFrontend(
            exact_supplier(dataset()), batch_size=64,
            max_pending=10, tenant_share=0.5, start=False,
        ) as service:
            admitted = shed = 0
            for _ in range(8):
                try:
                    service.submit("exact", battery()[0], tenant="flood")
                    admitted += 1
                except OverloadError:
                    shed += 1
            assert admitted == 5  # max(1, int(10 * 0.5))
            assert shed == 3
            # The flooding tenant's shed must not block a quiet one.
            service.submit("exact", battery()[0], tenant="quiet")
            stats = service.stats()
            assert stats["shed_tenant"] == 3
            assert stats["submitted"] == 6


# ----------------------------------------------------------------------
# Async path parity: concurrent builds, exact wire accounting
# ----------------------------------------------------------------------

class TestAsyncBuildParity:
    def test_concurrent_builds_bit_identical_and_wire_exact(self):
        datasets = [dataset(seed=21), dataset(seed=22)]
        locals_ = [
            build_sharded(
                "sketch", data, SIZE, np.random.default_rng(5 + i),
                num_shards=2, parallel=False,
            )
            for i, data in enumerate(datasets)
        ]
        results = [None, None]
        errors = []
        with Coordinator("inprocess", 2) as coord:
            before = coord.transport.stats.snapshot()

            def run(i):
                try:
                    results[i] = distributed_build(
                        "sketch", datasets[i], SIZE,
                        np.random.default_rng(5 + i),
                        coordinator=coord,
                    )
                except Exception as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(i,))
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            after = coord.transport.stats.snapshot()
        assert not errors
        # Bit-identical to the synchronous in-process engine, even
        # with both builds interleaving on one dispatcher.
        for local, dist in zip(locals_, results):
            assert dist.summary.query_many(battery()) == \
                local.summary.query_many(battery())
        # Per-build future-summed accounting adds up exactly to the
        # transport's counters: nothing double-counted, nothing lost.
        total_wire = sum(result.bytes_on_wire for result in results)
        assert total_wire == (
            after["bytes_sent"] - before["bytes_sent"]
            + after["bytes_received"] - before["bytes_received"]
        )
        total_frames = sum(result.frames_sent for result in results)
        assert total_frames == (
            after["frames_sent"] - before["frames_sent"]
        )
        assert all(result.retries == 0 for result in results)
        assert all(result.shm_bytes == 0 for result in results)
