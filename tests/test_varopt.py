"""Tests for offline and streaming VarOpt sampling."""

import numpy as np
import pytest

from repro.core.ipps import ipps_probabilities, ipps_threshold
from repro.core.types import Dataset
from repro.core.varopt import (
    StreamVarOpt,
    stream_varopt_summary,
    varopt_sample,
    varopt_summary,
)


class TestOfflineVarOpt:
    def test_exact_sample_size(self, small_weights, rng):
        for s in (5, 20, 80):
            included, tau = varopt_sample(small_weights, s, rng)
            assert included.size == s

    def test_includes_all_heavy_keys(self, rng):
        w = np.array([100.0, 100.0, 1.0, 1.0, 1.0, 1.0])
        included, tau = varopt_sample(w, 3, rng)
        assert {0, 1} <= set(included.tolist())

    def test_small_s_on_tiny_input(self, rng):
        included, tau = varopt_sample(np.array([3.0, 1.0]), 1, rng)
        assert included.size == 1

    def test_s_covers_everything(self, rng):
        w = np.array([1.0, 2.0, 0.0, 3.0])
        included, tau = varopt_sample(w, 5, rng)
        assert set(included.tolist()) == {0, 1, 3}
        assert tau == 0.0

    def test_inclusion_probabilities_match_ipps(self, rng):
        w = np.array([5.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0, 1.0])
        s = 4
        p, _tau = ipps_probabilities(w, s)
        counts = np.zeros_like(w)
        trials = 6000
        for t in range(trials):
            included, _ = varopt_sample(w, s, np.random.default_rng(t))
            counts[included] += 1
        np.testing.assert_allclose(counts / trials, p, atol=0.03)

    def test_unbiased_subset_sums(self, rng):
        w = 1.0 + np.random.default_rng(5).pareto(1.3, size=60)
        s = 15
        subset = np.arange(0, 60, 3)
        truth = w[subset].sum()
        estimates = []
        for t in range(3000):
            r = np.random.default_rng(t)
            included, tau = varopt_sample(w, s, r)
            adj = np.maximum(w[included], tau)
            mask = np.isin(included, subset)
            estimates.append(adj[mask].sum())
        assert np.mean(estimates) == pytest.approx(truth, rel=0.05)

    def test_summary_roundtrip(self, line_dataset, rng):
        summary = varopt_summary(line_dataset, 40, rng)
        assert summary.size == 40
        assert summary.estimate_total() == pytest.approx(
            line_dataset.total_weight, rel=0.5
        )


class TestStreamVarOpt:
    def test_rejects_bad_size(self, rng):
        with pytest.raises(ValueError):
            StreamVarOpt(0, rng)

    def test_rejects_negative_weight(self, rng):
        sampler = StreamVarOpt(2, rng)
        with pytest.raises(ValueError):
            sampler.feed((1,), -1.0)

    def test_keeps_everything_below_capacity(self, rng):
        sampler = StreamVarOpt(10, rng)
        for i in range(7):
            sampler.feed((i,), float(i + 1))
        assert sampler.current_size == 7
        assert sampler.tau == 0.0

    def test_zero_weights_skipped(self, rng):
        sampler = StreamVarOpt(3, rng)
        sampler.feed((0,), 0.0)
        assert sampler.current_size == 0

    def test_exact_size_after_overflow(self, rng):
        sampler = StreamVarOpt(25, rng)
        weights = 1.0 + np.random.default_rng(9).pareto(1.2, size=500)
        for i, w in enumerate(weights):
            sampler.feed((i,), float(w))
        assert sampler.current_size == 25

    def test_final_tau_matches_offline(self, rng):
        weights = 1.0 + np.random.default_rng(11).pareto(1.2, size=400)
        sampler = StreamVarOpt(30, rng)
        for i, w in enumerate(weights):
            sampler.feed((i,), float(w))
        assert sampler.tau == pytest.approx(
            ipps_threshold(weights, 30), rel=1e-9
        )

    def test_heavy_keys_always_kept(self, rng):
        weights = np.ones(200)
        weights[17] = 1000.0
        weights[133] = 800.0
        sampler = StreamVarOpt(10, rng)
        for i, w in enumerate(weights):
            sampler.feed((i,), float(w))
        kept = {key[0] for key, _w in sampler.sample_items()}
        assert {17, 133} <= kept

    def test_inclusion_probabilities_match_ipps(self):
        w = np.array([5.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0, 1.0])
        s = 4
        p, _tau = ipps_probabilities(w, s)
        counts = np.zeros_like(w)
        trials = 6000
        for t in range(trials):
            sampler = StreamVarOpt(s, np.random.default_rng(t))
            for i, weight in enumerate(w):
                sampler.feed((i,), float(weight))
            for key, _weight in sampler.sample_items():
                counts[key[0]] += 1
        np.testing.assert_allclose(counts / trials, p, atol=0.03)

    def test_unbiased_total(self):
        weights = 1.0 + np.random.default_rng(21).pareto(1.1, size=150)
        truth = weights.sum()
        estimates = []
        for t in range(2000):
            sampler = StreamVarOpt(20, np.random.default_rng(t))
            for i, w in enumerate(weights):
                sampler.feed((i,), float(w))
            estimates.append(sampler.summary().estimate_total())
        assert np.mean(estimates) == pytest.approx(truth, rel=0.05)

    def test_summary_shape(self, grid_dataset, rng):
        summary = stream_varopt_summary(grid_dataset, 50, rng)
        assert summary.size == 50
        assert summary.coords.shape == (50, 2)

    def test_adjusted_weights_valid(self, rng):
        weights = 1.0 + np.random.default_rng(31).pareto(1.0, size=300)
        sampler = StreamVarOpt(40, rng)
        for i, w in enumerate(weights):
            sampler.feed((i,), float(w))
        summary = sampler.summary()
        adj = summary.adjusted_weights
        # Every adjusted weight is >= its original weight and >= tau ...
        assert (adj >= summary.weights - 1e-9).all()
        # ... and the light region's adjusted weight is exactly tau.
        light = summary.weights < summary.tau
        np.testing.assert_allclose(adj[light], summary.tau)

    def test_empty_stream_summary(self, rng):
        sampler = StreamVarOpt(5, rng)
        summary = sampler.summary()
        assert summary.size == 0
        assert summary.estimate_total() == 0.0

    def test_order_of_feed_does_not_break_size(self, rng):
        weights = np.sort(1.0 + np.random.default_rng(3).pareto(1.2, 300))
        for order in (weights, weights[::-1]):
            sampler = StreamVarOpt(12, np.random.default_rng(0))
            for i, w in enumerate(order):
                sampler.feed((i,), float(w))
            assert sampler.current_size == 12
