"""Tests for the disjoint-range aware sampler and systematic sampling."""

import numpy as np
import pytest

from repro.aware.disjoint import disjoint_aware_sample, disjoint_aware_summary
from repro.aware.systematic import systematic_sample, systematic_summary
from repro.core.discrepancy import (
    max_interval_discrepancy,
    max_prefix_discrepancy,
)
from repro.core.ipps import ipps_probabilities


class TestDisjointAware:
    def make_input(self, seed, n=150, n_ranges=12):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, n_ranges, size=n)
        weights = 1.0 + rng.pareto(1.2, size=n)
        return labels, weights

    def test_exact_sample_size(self):
        labels, weights = self.make_input(0)
        for s in (4, 15, 60):
            included, _, _ = disjoint_aware_sample(
                labels, weights, s, np.random.default_rng(1)
            )
            assert included.size == s

    def test_every_range_floor_or_ceiling(self):
        for seed in range(30):
            labels, weights = self.make_input(seed)
            included, tau, probs = disjoint_aware_sample(
                labels, weights, 18, np.random.default_rng(seed + 50)
            )
            mask = np.zeros(len(labels), bool)
            mask[included] = True
            for label in np.unique(labels):
                in_range = labels == label
                expected = probs[in_range].sum()
                actual = mask[in_range].sum()
                assert abs(actual - expected) < 1.0 + 1e-9

    def test_inclusion_probabilities_preserved(self):
        labels = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        weights = np.array([5.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0, 1.0])
        p, _ = ipps_probabilities(weights, 4)
        counts = np.zeros(8)
        trials = 6000
        for t in range(trials):
            included, _, _ = disjoint_aware_sample(
                labels, weights, 4, np.random.default_rng(t)
            )
            counts[included] += 1
        np.testing.assert_allclose(counts / trials, p, atol=0.03)

    def test_summary_interface(self, line_dataset, rng):
        labels = line_dataset.keys_1d() // 1000
        summary = disjoint_aware_summary(line_dataset, labels, 20, rng)
        assert summary.size == 20


class TestSystematic:
    def make_input(self, seed, n=120):
        rng = np.random.default_rng(seed)
        keys = rng.choice(10_000, size=n, replace=False)
        weights = 1.0 + rng.pareto(1.2, size=n)
        return keys, weights

    def test_exact_sample_size(self):
        keys, weights = self.make_input(0)
        for s in (5, 20, 60):
            included, _, _ = systematic_sample(
                keys, weights, s, np.random.default_rng(1)
            )
            assert included.size == s

    def test_prefix_discrepancy_below_one(self):
        # Systematic sampling achieves Delta < 1 on all prefixes ...
        for seed in range(25):
            keys, weights = self.make_input(seed)
            included, tau, probs = systematic_sample(
                keys, weights, 20, np.random.default_rng(seed)
            )
            mask = np.zeros(len(keys), bool)
            mask[included] = True
            assert max_prefix_discrepancy(keys, probs, mask) < 1.0 + 1e-9

    def test_interval_discrepancy_below_two(self):
        # ... hence < 2 on all intervals (difference of two prefixes).
        for seed in range(25):
            keys, weights = self.make_input(seed)
            included, tau, probs = systematic_sample(
                keys, weights, 20, np.random.default_rng(seed)
            )
            mask = np.zeros(len(keys), bool)
            mask[included] = True
            assert max_interval_discrepancy(keys, probs, mask) < 2.0 + 1e-9

    def test_inclusion_probabilities_preserved(self):
        keys = np.arange(8)
        weights = np.array([5.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0, 1.0])
        p, _ = ipps_probabilities(weights, 4)
        counts = np.zeros(8)
        trials = 8000
        for t in range(trials):
            included, _, _ = systematic_sample(
                keys, weights, 4, np.random.default_rng(t)
            )
            counts[included] += 1
        np.testing.assert_allclose(counts / trials, p, atol=0.03)

    def test_positive_correlations_exist(self):
        # The known systematic-sampling defect (why it is not VarOpt):
        # inclusions of keys exactly one probability-unit apart are
        # perfectly positively correlated.
        keys = np.arange(4)
        weights = np.ones(4)  # p_i = 1/2 each for s = 2
        both = 0
        trials = 4000
        for t in range(trials):
            included, _, _ = systematic_sample(
                keys, weights, 2, np.random.default_rng(t)
            )
            chosen = set(included.tolist())
            if 0 in chosen and 2 in chosen:
                both += 1
        # Independent sampling would give 0.25; systematic gives ~0.5.
        assert both / trials > 0.4

    def test_summary_interface(self, line_dataset, rng):
        summary = systematic_summary(line_dataset, 25, rng)
        assert summary.size == 25


class TestDeterministicOrderSet:
    def make_input(self, seed, n=120):
        rng = np.random.default_rng(seed)
        keys = rng.choice(10_000, size=n, replace=False)
        weights = 1.0 + rng.pareto(1.2, size=n)
        return keys, weights

    def test_exact_size(self):
        from repro.aware.systematic import deterministic_order_sample

        keys, weights = self.make_input(0)
        included, tau, probs = deterministic_order_sample(keys, weights, 20)
        assert included.size == 20

    def test_prefix_discrepancy_below_one(self):
        from repro.aware.systematic import deterministic_order_sample

        for seed in range(15):
            keys, weights = self.make_input(seed)
            included, tau, probs = deterministic_order_sample(
                keys, weights, 20
            )
            mask = np.zeros(len(keys), bool)
            mask[included] = True
            assert max_prefix_discrepancy(keys, probs, mask) < 1.0 + 1e-9

    def test_fully_deterministic(self):
        from repro.aware.systematic import deterministic_order_sample

        keys, weights = self.make_input(3)
        a, _, _ = deterministic_order_sample(keys, weights, 15)
        b, _, _ = deterministic_order_sample(keys, weights, 15)
        np.testing.assert_array_equal(a, b)
