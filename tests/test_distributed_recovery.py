"""Distributed crash recovery: worker loss without losing coverage.

:class:`~repro.durable.FaultyTransport` injects deterministic kills
(the n-th outbound frame to a worker is lost along with the worker),
and the recovery contract is pinned the same way the engine's is:
a fleet that loses a worker mid-stream under ``recovery="replay"`` or
``"replicate"`` answers **bit-identically** to a fleet that never did.
"""

import numpy as np
import pytest

from repro import obs
from repro.distributed.coordinator import (
    Coordinator,
    DistributedError,
    DistributedIngest,
)
from repro.distributed.transport import TransportError
from repro.durable import FaultyTransport, LogCheckpointStore
from repro.stream import MicroBatch, tumbling
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box

DOMAIN_SIZE = 1 << 12
METHODS = ["exact", "varopt"]
QUERIES = [
    Box((0,), (DOMAIN_SIZE // 2,)),
    Box((100,), (4000,)),
]


def domain():
    return ProductDomain([OrderedDomain(DOMAIN_SIZE)])


def batches(seed, n_batches=24, n=30):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n_batches):
        coords = rng.integers(0, DOMAIN_SIZE, size=(n, 1))
        weights = 1.0 + rng.pareto(1.3, size=n)
        out.append(MicroBatch(coords, weights, float(i)))
    return out


def run_fleet(transport, seed, *, recovery="replay", window=None,
              num_workers=4, replay_log=64, checkpoint_interval=None,
              store=None, n_batches=24):
    ingest = DistributedIngest(
        domain(), METHODS, 48, transport=transport,
        num_workers=num_workers, seed=seed, recovery=recovery,
        window=window, replay_log=replay_log,
        checkpoint_interval=checkpoint_interval, store=store,
    )
    try:
        for batch in batches(seed, n_batches=n_batches):
            ingest.process(batch)
        return ingest.query_many_now(QUERIES)
    finally:
        ingest.close()


class TestReplayRecovery:
    @pytest.mark.parametrize("seed", range(30))
    def test_kill_mid_stream_bit_identical_inprocess(self, seed):
        baseline = run_fleet("inprocess", seed)
        victim = seed % 4
        # frame 1 is open_stream; the kill lands on an ingest frame
        kill_at = 2 + seed % 6
        faulty = FaultyTransport(
            "inprocess", kill_after={victim: kill_at}
        )
        recovered = run_fleet(faulty, seed)
        assert recovered == baseline
        assert faulty.killed == {victim}

    @pytest.mark.parametrize("seed", range(4))
    def test_kill_mid_stream_bit_identical_mp(self, seed):
        baseline = run_fleet("mp", seed)
        faulty = FaultyTransport("mp", kill_after={seed % 3: 3})
        recovered = run_fleet(faulty, seed, num_workers=4)
        assert recovered == baseline

    def test_windowed_streams_recover(self):
        window = tumbling(8.0)
        baseline = run_fleet("inprocess", 7, window=window)
        faulty = FaultyTransport("inprocess", kill_after={1: 4})
        recovered = run_fleet(faulty, 7, window=window)
        assert recovered == baseline

    def test_checkpoint_interval_bounds_the_replay_log(self):
        # With periodic checkpoints a tiny replay log suffices: only
        # the tail since the last checkpoint is ever replayed.
        baseline = run_fleet("inprocess", 9)
        faulty = FaultyTransport("inprocess", kill_after={2: 6})
        recovered = run_fleet(
            faulty, 9, replay_log=3, checkpoint_interval=8
        )
        assert recovered == baseline

    def test_replay_log_gap_is_loud(self):
        # No checkpoints + a replay log shorter than the slice's
        # backlog: recovery must refuse rather than silently lose data.
        faulty = FaultyTransport("inprocess", kill_after={0: 22})
        with pytest.raises(DistributedError, match="replay"):
            run_fleet(
                faulty, 11, num_workers=1, replay_log=2, n_batches=40
            )

    def test_death_mid_collect_recovers(self):
        # 24 batches over 4 workers = 6 ingest frames each after the
        # open; frame 8 is the snapshot request itself.
        baseline = run_fleet("inprocess", 13)
        faulty = FaultyTransport("inprocess", kill_after={0: 8})
        recovered = run_fleet(faulty, 13)
        assert recovered == baseline

    def test_multiple_deaths(self):
        baseline = run_fleet("inprocess", 17)
        faulty = FaultyTransport(
            "inprocess", kill_after={0: 3, 2: 5}
        )
        recovered = run_fleet(faulty, 17)
        assert recovered == baseline
        assert faulty.killed == {0, 2}

    def test_recovery_metrics_counted(self):
        registry = obs.MetricsRegistry(enabled=True)
        coordinator = Coordinator(
            FaultyTransport("inprocess", kill_after={1: 4}),
            4, registry=registry,
        )
        ingest = DistributedIngest(
            domain(), METHODS, 48, seed=3, recovery="replay",
            replay_log=64, coordinator=coordinator,
        )
        try:
            for batch in batches(3):
                ingest.process(batch)
            ingest.query_many_now(QUERIES)
        finally:
            ingest.close()
            coordinator.close()
        assert registry.counter(
            "coordinator.slices_recovered"
        ).value >= 1
        assert registry.counter(
            "coordinator.batches_replayed"
        ).value >= 1

    def test_persists_checkpoints_to_store(self, tmp_path):
        store = LogCheckpointStore(str(tmp_path / "ck"))
        baseline = run_fleet("inprocess", 5)
        recovered = run_fleet(
            FaultyTransport("inprocess", kill_after={0: 7}), 5,
            checkpoint_interval=6, store=store,
        )
        assert recovered == baseline
        keys = store.streams()
        assert keys and all(k.startswith("live/") for k in keys)
        for key in keys:
            assert store.resume_state(key)["checkpoints"] >= 1
        store.close()


class TestReplicateRecovery:
    def test_primary_death_promotes_sibling(self):
        baseline = run_fleet("inprocess", 21, recovery="replicate")
        faulty = FaultyTransport("inprocess", kill_after={0: 5})
        recovered = run_fleet(faulty, 21, recovery="replicate")
        assert recovered == baseline

    def test_replica_death_is_invisible(self):
        baseline = run_fleet("inprocess", 23, recovery="replicate")
        faulty = FaultyTransport("inprocess", kill_after={1: 5})
        recovered = run_fleet(faulty, 23, recovery="replicate")
        assert recovered == baseline

    def test_losing_both_replicas_is_loud(self):
        faulty = FaultyTransport(
            "inprocess", kill_after={0: 4, 1: 5}
        )
        with pytest.raises(DistributedError, match="replica"):
            run_fleet(faulty, 25, recovery="replicate")


class TestNoneModeUnchanged:
    def test_lost_slice_stays_lost(self):
        # The historical lossy semantics: recovery="none" drops the
        # dead worker's slice and answers from the survivors.
        baseline = run_fleet("inprocess", 27, recovery="none")
        faulty = FaultyTransport("inprocess", kill_after={0: 8})
        lossy = run_fleet(faulty, 27, recovery="none")
        assert lossy != baseline
        assert lossy["exact"][0] < baseline["exact"][0]


class TestBackoffSatellite:
    def test_retry_delay_exponential_with_cap(self):
        coordinator = Coordinator(
            "inprocess", 1, retry_backoff=0.1, retry_backoff_cap=0.4
        )
        try:
            for attempt, ceiling in [(1, 0.1), (2, 0.2), (3, 0.4),
                                     (10, 0.4)]:
                draws = [
                    coordinator.retry_delay(attempt) for _ in range(50)
                ]
                assert all(0.0 <= d <= ceiling for d in draws)
                assert len(set(draws)) > 1  # jittered, not constant
        finally:
            coordinator.close()

    def test_zero_backoff_restores_immediate_retry(self):
        coordinator = Coordinator("inprocess", 1, retry_backoff=0.0)
        try:
            assert coordinator.retry_delay(5) == 0.0
        finally:
            coordinator.close()

    def test_retries_counted_and_timed(self):
        # A build task lands on a worker the schedule kills on its
        # first frame; the coordinator re-dispatches it with a drawn
        # backoff, both of which land in the obs metrics.
        registry = obs.MetricsRegistry(enabled=True)
        rng = np.random.default_rng(0)
        coords = rng.integers(0, DOMAIN_SIZE, size=(50, 1))
        weights = 1.0 + rng.pareto(1.3, size=50)
        coordinator = Coordinator(
            FaultyTransport("inprocess", kill_after={0: 1}), 2,
            retry_backoff=0.001, retry_backoff_cap=0.004,
            registry=registry,
        )
        try:
            from repro.distributed import codec

            replies = coordinator.run_tasks([{
                "type": "build",
                "method": "exact",
                "size": 48,
                "seed": 1,
                "coords": coords,
                "weights": weights,
                "domain": codec.encode_domain(domain()),
            }])
            assert replies[0]["ok"]
        finally:
            coordinator.close()
        assert registry.counter("coordinator.task_retries").value >= 1
        hist = registry.histogram("coordinator.retry_backoff_seconds")
        assert hist.count >= 1


class TestFaultyTransport:
    def test_drop_without_kill(self):
        faulty = FaultyTransport(
            "inprocess", drop_sends={0: [2]}
        )
        # dropping one ingest frame loses those items but not the
        # worker: recovery="none" still answers
        ingest = DistributedIngest(
            domain(), ["exact"], 48, transport=faulty,
            num_workers=2, seed=1, recovery="none",
        )
        try:
            for batch in batches(1, n_batches=6):
                ingest.process(batch)
            result = ingest.query_many_now(QUERIES)
            assert result["exact"][0] > 0
        finally:
            ingest.close()
        assert faulty.killed == frozenset()

    def test_killed_worker_raises_on_send(self):
        faulty = FaultyTransport("inprocess", kill_after={0: 1})
        faulty.start(1)
        try:
            faulty.send(0, b"x")  # the killing frame is swallowed
            assert not faulty.alive(0)
            with pytest.raises(TransportError):
                faulty.send(0, b"y")
        finally:
            faulty.stop()
