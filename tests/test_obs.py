"""Telemetry layer: histograms, registry, spans, probes, full stack.

Covers the observability contracts end to end:

* :class:`~repro.obs.Histogram` -- power-of-two bucket boundaries,
  rank-exact percentile extraction, vectorized ``observe_many``
  equivalence, merge associativity, and the bit-exact ``obs-hist``
  wire-codec round trip (same protocol as every summary);
* :class:`~repro.obs.MetricsRegistry` -- named metric identity,
  collector attachment (weakly referenced), snapshot/delta semantics,
  Prometheus exposition, JSONL timeline records, and the
  disabled-registry null-object contract;
* spans -- nesting/parent links, error tagging, ring bounds;
* thread safety -- the atomic-increment-under-GIL pattern the stats
  views migrated onto;
* :class:`~repro.obs.AccuracyProbe` -- 30-seed agreement with the
  offline discrepancy computation, tau drift tracking;
* the acceptance stack -- one enabled registry observing a
  ``ServingFrontend`` + ``AsyncDispatcher`` + ``StreamEngine`` fleet
  reports wire, dispatch, serving, per-tenant latency and accuracy
  metrics under a single namespace.
"""

import io
import json
import math
import threading

import numpy as np
import pytest

from repro import obs
from repro.core.types import Dataset
from repro.distributed import Coordinator, ServingFrontend, distributed_build
from repro.distributed.codec import from_bytes, to_bytes
from repro.distributed.dispatch import DispatchStats
from repro.distributed.frontend import FrontendStats
from repro.distributed.transport import WireStats
from repro.obs import AccuracyProbe, Histogram, MetricsRegistry
from repro.stream import StreamEngine, tumbling
from repro.structures.ranges import Box

DOMAIN = 1 << 12


@pytest.fixture
def registry():
    """An enabled registry installed as the process-global one."""
    reg = MetricsRegistry(enabled=True)
    previous = obs.set_registry(reg)
    yield reg
    obs.set_registry(previous)


def dataset(seed=42, n=2000):
    rng = np.random.default_rng(seed)
    return Dataset.one_dimensional(
        rng.integers(0, DOMAIN, size=n),
        1.0 + rng.pareto(1.4, size=n),
        DOMAIN,
    )


def battery(step=DOMAIN // 8):
    return [Box((lo,), (lo + DOMAIN // 3,))
            for lo in range(0, DOMAIN // 2, step)]


# ----------------------------------------------------------------------
# Histogram: buckets, percentiles, merge, wire codec
# ----------------------------------------------------------------------

class TestHistogram:
    def test_bucket_boundaries(self):
        """Bucket e covers [2^(e-1), 2^e): edges land in the upper bucket."""
        hist = Histogram()
        for value in (0.5, 0.999, 1.0, 1.5, 1.999, 2.0, 4.0):
            hist.observe(value)
        buckets = hist.snapshot_value()["buckets"]
        # 0.5..<1 -> bucket 0; 1..<2 -> bucket 1; 2..<4 -> 2; 4..<8 -> 3
        assert buckets == {"0": 2, "1": 3, "2": 1, "3": 1}

    def test_zero_and_negative_bucket(self):
        hist = Histogram()
        hist.observe(0.0)
        hist.observe(-3.5)
        snap = hist.snapshot_value()
        assert snap["zero"] == 2 and snap["count"] == 2
        assert snap["buckets"] == {}
        assert hist.percentile(0.5) == 0.0

    def test_percentile_rank_exact(self):
        """percentile(q) = upper edge of the bucket holding rank ceil(qn)."""
        hist = Histogram()
        hist.observe_many([1.0] * 50 + [10.0] * 45 + [100.0] * 5)
        # rank 50 -> the 1.0s (bucket [1,2), upper edge 2);
        # rank 95 -> the 10.0s (bucket [8,16), upper edge 16);
        # rank 99 -> the 100.0s (bucket [64,128), upper edge 128).
        assert hist.percentile(0.50) == 2.0
        assert hist.percentile(0.95) == 16.0
        assert hist.percentile(0.99) == 128.0
        assert hist.percentile(1.00) == 128.0

    def test_percentile_bounds_true_quantile(self):
        """The returned edge bounds the true quantile within one octave."""
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=-6.0, sigma=2.0, size=5000)
        hist = Histogram()
        hist.observe_many(values)
        for q in (0.5, 0.9, 0.99):
            true = float(np.quantile(values, q, method="inverted_cdf"))
            upper = hist.percentile(q)
            assert true <= upper <= true * 2.0 + 1e-12

    def test_observe_many_matches_scalar(self):
        rng = np.random.default_rng(3)
        values = np.concatenate([
            rng.lognormal(size=500), [0.0, -1.0, 2.0, 1024.0]
        ])
        one = Histogram()
        for value in values:
            one.observe(value)
        many = Histogram()
        many.observe_many(values)
        a, b = one.snapshot_value(), many.snapshot_value()
        # Bucket counts are integers (exactly equal); the running float
        # total may differ in the last ulp with summation order.
        total_a, total_b = a.pop("total"), b.pop("total")
        assert a == b
        assert total_a == pytest.approx(total_b, rel=1e-12)

    def test_merge_associative_and_commutative(self):
        """Bucket counts agree whatever the merge tree shape."""
        rng = np.random.default_rng(11)
        parts = []
        for _ in range(4):
            hist = Histogram()
            hist.observe_many(rng.lognormal(size=200))
            parts.append(hist)

        def merged(order):
            acc = Histogram()
            for index in order:
                acc.merge(parts[index])
            return acc

        left = merged([0, 1, 2, 3])
        right = Histogram().merge(
            Histogram().merge(parts[3]).merge(parts[2])
        ).merge(Histogram().merge(parts[1]).merge(parts[0]))
        a, b = left.snapshot_value(), right.snapshot_value()
        assert a["buckets"] == b["buckets"]
        assert a["count"] == b["count"]
        assert a["min"] == b["min"] and a["max"] == b["max"]
        assert a["total"] == pytest.approx(b["total"], rel=1e-12)

    def test_wire_codec_round_trip_bit_exact(self):
        """obs-hist ships over the summary codec like any other state."""
        hist = Histogram()
        hist.observe_many([0.125, 3.0, 3.0, 700.0, 0.0])
        clone = from_bytes(to_bytes(hist))
        assert isinstance(clone, Histogram)
        state, clone_state = hist.to_state(), clone.to_state()
        assert sorted(state) == sorted(clone_state)
        for key, value in state.items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(value, clone_state[key])
            else:
                assert value == clone_state[key]
        assert clone.snapshot_value() == hist.snapshot_value()

    def test_worker_histograms_sum_on_coordinator(self):
        """Shipped worker histograms merge into the exact union."""
        worker_hists, union = [], Histogram()
        for seed in range(3):
            rng = np.random.default_rng(seed)
            values = rng.lognormal(size=100)
            hist = Histogram()
            hist.observe_many(values)
            union.observe_many(values)
            worker_hists.append(to_bytes(hist))  # ship
        folded = Histogram()
        for blob in worker_hists:
            folded.merge(from_bytes(blob))
        a, b = folded.snapshot_value(), union.snapshot_value()
        assert a["buckets"] == b["buckets"] and a["count"] == b["count"]


# ----------------------------------------------------------------------
# Registry: identity, collectors, snapshots, deltas, exports
# ----------------------------------------------------------------------

class TestRegistry:
    def test_named_metric_identity(self, registry):
        a = registry.counter("x.hits", tenant="t0")
        b = registry.counter("x.hits", tenant="t0")
        c = registry.counter("x.hits", tenant="t1")
        assert a is b and a is not c
        a.inc(2)
        snap = registry.snapshot()
        assert snap["x.hits{tenant=t0}"] == 2
        assert snap["x.hits{tenant=t1}"] == 0

    def test_kind_conflict_raises(self, registry):
        registry.counter("a.b")
        with pytest.raises(TypeError):
            registry.histogram("a.b")

    def test_collectors_sum_same_key(self, registry):
        """Two same-name transports' counters sum in the snapshot."""
        first, second = WireStats("tcp"), WireStats("tcp")
        registry.attach(first)
        registry.attach(second)
        first.frames_sent += 3
        second.frames_sent += 4
        assert registry.snapshot()["wire.frames_sent{transport=tcp}"] == 7

    def test_collector_weakref_drops_with_owner(self, registry):
        stats = WireStats("gone")
        registry.attach(stats)
        assert "wire.frames_sent{transport=gone}" in registry.snapshot()
        del stats
        assert "wire.frames_sent{transport=gone}" not in registry.snapshot()

    def test_delta_counters_and_histograms(self, registry):
        counter = registry.counter("d.count")
        hist = registry.histogram("d.lat")
        counter.inc(5)
        hist.observe_many([1.0, 1.0])
        before = registry.snapshot()
        counter.inc(2)
        hist.observe_many([100.0, 100.0, 100.0])
        delta = registry.delta(registry.snapshot(), before)
        assert delta["d.count"] == 2
        assert delta["d.lat"]["count"] == 3
        # Window percentiles describe only the new observations.
        assert delta["d.lat"]["p50"] == 128.0

    def test_expose_prometheus_text(self, registry):
        registry.counter("wire.bytes_sent", transport="tcp").inc(9)
        registry.histogram("serving.latency_seconds").observe(0.003)
        text = obs.expose(registry.snapshot())
        assert 'repro_wire_bytes_sent{transport="tcp"} 9' in text
        assert "repro_serving_latency_seconds_count 1" in text
        assert 'le="+Inf"' in text
        # Cumulative bucket for 0.003: upper edge 2^-8 = 0.00390625.
        assert 'le="0.00390625"' in text

    def test_report_timeline_jsonl(self, registry):
        counter = registry.counter("t.events")
        counter.inc(4)
        stream = io.StringIO()
        first = registry.report_timeline(stream, label="win0")
        counter.inc(6)
        second = registry.report_timeline(stream)
        assert first["metrics"]["t.events"] == 4
        assert first["label"] == "win0"
        assert second["metrics"]["t.events"] == 6
        lines = [json.loads(line) for line in
                 stream.getvalue().strip().splitlines()]
        assert len(lines) == 2
        assert lines[1]["metrics"]["t.events"] == 6
        assert lines[0]["t"] <= lines[1]["t"]


class TestDisabledRegistry:
    def test_null_metrics_are_shared_no_ops(self):
        reg = MetricsRegistry(enabled=False)
        counter = reg.counter("n.a")
        gauge = reg.gauge("n.b")
        hist = reg.histogram("n.c", tenant="t")
        assert counter is reg.counter("other.name")
        counter.inc(5)
        gauge.set(3.0)
        hist.observe(1.0)
        hist.observe_many([1.0, 2.0])
        assert counter.value == 0 and hist.count == 0
        assert reg.snapshot() == {}

    def test_null_span_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        with reg.span("outer") as span:
            with reg.span("inner"):
                pass
        assert span is obs.NULL_SPAN
        assert len(reg.trace) == 0

    def test_disabled_registry_still_pulls_collectors(self):
        """Functional stats (wire accounting) surface either way."""
        reg = MetricsRegistry(enabled=False)
        stats = WireStats("pipe")
        reg.attach(stats)
        stats.bytes_sent += 123
        assert reg.snapshot()["wire.bytes_sent{transport=pipe}"] == 123


# ----------------------------------------------------------------------
# Spans: nesting, parents, ring bounds
# ----------------------------------------------------------------------

class TestSpans:
    def test_parent_links_reconstruct_nesting(self, registry):
        with registry.span("outer") as outer:
            with registry.span("inner", step=1) as inner:
                pass
        spans = registry.trace.spans()
        assert [span["name"] for span in spans] == ["inner", "outer"]
        inner_rec, outer_rec = spans
        assert inner_rec["parent_id"] == outer_rec["span_id"]
        assert outer_rec["parent_id"] is None
        assert inner_rec["tags"] == {"step": 1}
        assert 0.0 <= inner_rec["duration"] <= outer.duration
        assert inner.span_id == inner_rec["span_id"]

    def test_span_durations_feed_trace_histogram(self, registry):
        with registry.span("unit"):
            pass
        snap = registry.snapshot()
        assert snap["trace.unit_seconds"]["count"] == 1

    def test_error_tagging(self, registry):
        with pytest.raises(ValueError):
            with registry.span("boom"):
                raise ValueError("nope")
        (record,) = registry.trace.spans("boom")
        assert record["error"] == "ValueError"

    def test_ring_is_bounded(self):
        reg = MetricsRegistry(enabled=True, trace_capacity=8)
        for index in range(50):
            with reg.span("tick", i=index):
                pass
        spans = reg.trace.spans()
        assert len(spans) == 8
        assert [span["tags"]["i"] for span in spans] == list(range(42, 50))


# ----------------------------------------------------------------------
# Thread safety: the atomic-increment contract
# ----------------------------------------------------------------------

class TestThreadSafety:
    def _hammer(self, work, threads=8):
        barrier = threading.Barrier(threads)

        def run():
            barrier.wait()
            work()

        pool = [threading.Thread(target=run) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

    def test_counter_inc_loses_no_updates(self):
        counter = obs.Counter()
        self._hammer(lambda: [counter.inc() for _ in range(5000)])
        assert counter.value == 8 * 5000

    def test_dispatch_stats_inc_loses_no_updates(self):
        stats = DispatchStats()
        self._hammer(lambda: [stats.inc("failed") for _ in range(5000)])
        assert stats.failed == 8 * 5000

    def test_frontend_stats_batch_hist_under_contention(self):
        stats = FrontendStats()
        self._hammer(lambda: [stats.record_batch(5) for _ in range(5000)])
        assert stats.batch_hist == {8: 8 * 5000}

    def test_histogram_observe_under_contention(self):
        hist = Histogram()
        self._hammer(lambda: [hist.observe(1.5) for _ in range(2000)])
        assert hist.count == 8 * 2000
        assert hist.snapshot_value()["buckets"] == {"1": 8 * 2000}


# ----------------------------------------------------------------------
# AccuracyProbe: agreement with offline discrepancy, tau drift
# ----------------------------------------------------------------------

class TestAccuracyProbe:
    def _engine(self, seed, n=600):
        data = dataset(seed=seed, n=n)
        engine = StreamEngine(data.domain, ["exact", "obliv"], 64,
                              seed=seed)
        engine.process((data.coords, data.weights))
        return engine

    def test_30_seed_agreement_with_offline_discrepancy(self, registry):
        queries = battery()
        for seed in range(30):
            engine = self._engine(seed)
            probe = AccuracyProbe(engine, queries, registry=registry)
            reading = probe.observe()["obliv"]
            # Offline recomputation straight from the snapshots.
            exact = np.asarray(
                engine.snapshot("exact").query_many(queries), dtype=float
            )
            approx = np.asarray(
                engine.snapshot("obliv").query_many(queries), dtype=float
            )
            offline = float(np.max(np.abs(approx - exact)))
            assert reading["discrepancy"] == pytest.approx(offline, rel=1e-9)
            assert reading["tau"] == pytest.approx(
                float(engine.snapshot("obliv").tau)
            )

    def test_stride_and_gauges(self, registry):
        engine = self._engine(1)
        probe = AccuracyProbe(engine, battery(), stride=3,
                              registry=registry)
        readings = [probe.tick() for _ in range(6)]
        assert [r is not None for r in readings] == [
            False, False, True, False, False, True,
        ]
        snap = registry.snapshot()
        assert snap["accuracy.observations"] == 2
        assert "accuracy.discrepancy{method=obliv}" in snap
        assert "accuracy.tau{method=obliv}" in snap

    def test_tau_drift_tracks_changes(self, registry):
        data = dataset(seed=9, n=2000)
        engine = StreamEngine(data.domain, ["exact", "obliv"], 48, seed=9)
        probe = AccuracyProbe(engine, battery(), registry=registry)
        half = data.n // 2
        engine.process((data.coords[:half], data.weights[:half]))
        first = probe.observe()["obliv"]
        assert first["tau_drift"] == 0.0  # first sighting: no history
        engine.process((data.coords[half:], data.weights[half:]))
        second = probe.observe()["obliv"]
        assert second["tau_drift"] == pytest.approx(
            abs(second["tau"] - first["tau"])
        )
        assert second["tau"] > first["tau"]  # more mass, higher threshold

    def test_unknown_reference_rejected(self, registry):
        engine = self._engine(2)
        with pytest.raises(ValueError):
            AccuracyProbe(engine, battery(), reference="nope",
                          registry=registry)


# ----------------------------------------------------------------------
# Per-tenant serving accounting
# ----------------------------------------------------------------------

class TestPerTenantAccounting:
    def test_stats_tenants_served_shed_latency(self, registry):
        data = dataset()
        supplier = _static_supplier(data)
        service = ServingFrontend(
            supplier, batch_size=8, max_pending=8, tenant_share=0.5,
            start=False,
        )
        queries = battery()
        for index, query in enumerate(queries[:4]):
            service.submit("exact", query,
                           tenant="a" if index % 2 else "b")
        shed = 0
        try:
            for _ in range(10):
                service.submit("exact", queries[0], tenant="flood")
        except Exception:
            shed = 1
        service.flush()
        stats = service.stats()
        tenants = stats["tenants"]
        assert shed == 1 and tenants["flood"]["shed"] >= 1
        assert 0.0 < tenants["flood"]["shed_ratio"] <= 1.0
        for tenant in ("a", "b"):
            entry = tenants[tenant]
            assert entry["served"] == 2 and entry["shed"] == 0
            assert entry["shed_ratio"] == 0.0
            assert entry["p50_ms"] > 0.0
            assert entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
        # The same histograms surface through the registry, labelled.
        snap = registry.snapshot()
        assert snap["serving.tenant_latency_seconds{tenant=a}"]["count"] == 2
        assert snap["serving.tenant_served{tenant=b}"] == 2
        assert snap["serving.tenant_shed{tenant=flood}"] >= 1
        service.close()


def _static_supplier(data):
    from repro.engine.registry import build

    summaries = {
        "exact": build("exact", data, 200, np.random.default_rng(1)),
        "obliv": build("obliv", data, 200, np.random.default_rng(2)),
    }

    class Supplier:
        version = 0
        methods = list(summaries)

        def snapshot(self, method):
            return summaries[method]

    return Supplier()


# ----------------------------------------------------------------------
# Acceptance: one snapshot over the whole serving stack
# ----------------------------------------------------------------------

class TestFullStackSnapshot:
    def test_single_namespace_snapshot(self, registry):
        data = dataset(n=1500)
        # Distributed build: wire + dispatch + coordinator spans.
        with Coordinator("inprocess", 2) as coordinator:
            distributed_build("exact", data, 200,
                              coordinator=coordinator)
            # Streaming ingest: pane seal + ingest telemetry.
            engine = StreamEngine(
                data.domain, ["exact", "obliv"], 64,
                window=tumbling(4.0), seed=0,
            )
            for start in range(0, data.n, 100):
                stop = min(start + 100, data.n)
                engine.process((
                    data.coords[start:stop], data.weights[start:stop],
                    float(start // 100),
                ))
            # Serving + accuracy.
            service = ServingFrontend(_static_supplier(data),
                                      batch_size=4, start=False)
            for query in battery()[:4]:
                service.submit("exact", query, tenant="t0")
            service.flush()
            probe = AccuracyProbe(engine, battery(), registry=registry)
            probe.observe()
            snap = registry.snapshot()
            service.close()
        prefixes = {key.split(".")[0] for key in snap}
        assert {"wire", "dispatch", "serving", "stream",
                "accuracy", "trace"} <= prefixes
        # Wire and dispatch counters moved during the build.
        assert snap["wire.frames_sent{transport=inprocess}"] > 0
        assert snap["dispatch.completed"] > 0
        # Stream ingest telemetry saw every batch and sealed panes.
        assert snap["stream.batches_ingested"] == engine.batches_seen
        assert snap["stream.items_ingested"] == engine.items_seen
        assert snap["stream.panes_sealed"] > 0
        assert snap["stream.pane_seal_seconds"]["count"] == \
            snap["stream.panes_sealed"]
        # Per-tenant latency + accuracy under the same namespace.
        assert snap["serving.tenant_latency_seconds{tenant=t0}"]["count"] == 4
        assert "accuracy.discrepancy{method=obliv}" in snap
        # Spans from the coordinator and the pane seals in one ring.
        names = {span["name"] for span in registry.trace.spans()}
        assert "coordinator.run_tasks" in names
        assert "stream.pane_seal" in names
        assert "serving.flush" in names
        # The whole snapshot renders as one exposition page.
        text = obs.expose(snap)
        assert "repro_dispatch_completed" in text
        assert "repro_stream_items_ingested" in text

    def test_dispatcher_reply_latency_recorded(self, registry):
        data = dataset(n=800)
        with Coordinator("inprocess", 2) as coordinator:
            distributed_build("exact", data, 100,
                              coordinator=coordinator)
        hist = registry.snapshot()["dispatch.reply_latency_seconds"]
        assert hist["count"] > 0
        assert hist["p95"] > 0.0


class TestBucketExponentHelper:
    def test_matches_math_frexp(self):
        for value in (1e-9, 0.5, 1.0, 1.5, 2.0, 1000.0):
            exp = obs.metrics.bucket_exponent(value)
            assert math.ldexp(1.0, exp - 1) <= value < math.ldexp(1.0, exp)
