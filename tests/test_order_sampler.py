"""Tests for the order-structure aware sampler (Theorem 1)."""

import numpy as np
import pytest

from repro.aware.order_sampler import order_aware_sample, order_aware_summary
from repro.core.discrepancy import (
    max_interval_discrepancy,
    max_prefix_discrepancy,
)
from repro.core.ipps import ipps_probabilities


def make_input(seed, n=120, domain=10_000):
    rng = np.random.default_rng(seed)
    keys = rng.choice(domain, size=n, replace=False)
    weights = 1.0 + rng.pareto(1.2, size=n)
    return keys, weights


class TestOrderAware:
    def test_exact_sample_size(self):
        keys, weights = make_input(0)
        for s in (5, 17, 60):
            included, tau, _ = order_aware_sample(
                keys, weights, s, np.random.default_rng(1)
            )
            assert included.size == s

    def test_prefix_discrepancy_below_one(self):
        # Prefixes of the order are hierarchy ranges of the path
        # hierarchy: the sampler guarantees Delta < 1 on them.
        for seed in range(25):
            keys, weights = make_input(seed)
            included, tau, probs = order_aware_sample(
                keys, weights, 20, np.random.default_rng(seed + 100)
            )
            mask = np.zeros(len(keys), bool)
            mask[included] = True
            delta = max_prefix_discrepancy(keys, probs, mask)
            assert delta < 1.0 + 1e-9, f"seed {seed}: prefix delta {delta}"

    def test_interval_discrepancy_below_two(self):
        # Theorem 1(i): max interval discrepancy < 2.
        for seed in range(25):
            keys, weights = make_input(seed)
            included, tau, probs = order_aware_sample(
                keys, weights, 20, np.random.default_rng(seed + 200)
            )
            mask = np.zeros(len(keys), bool)
            mask[included] = True
            delta = max_interval_discrepancy(keys, probs, mask)
            assert delta < 2.0 + 1e-9, f"seed {seed}: interval delta {delta}"

    def test_oblivious_violates_interval_bound_sometimes(self):
        # Sanity check that the Delta < 2 bound is non-trivial: a
        # random-order VarOpt sample exceeds it on some seed.
        from repro.core.varopt import varopt_sample

        violated = False
        for seed in range(40):
            keys, weights = make_input(seed, n=300)
            probs, tau = ipps_probabilities(weights, 30)
            included, _ = varopt_sample(
                weights, 30, np.random.default_rng(seed)
            )
            mask = np.zeros(len(keys), bool)
            mask[included] = True
            if max_interval_discrepancy(keys, probs, mask) >= 2.0:
                violated = True
                break
        assert violated

    def test_inclusion_probabilities_preserved(self):
        keys = np.arange(8)
        weights = np.array([5.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0, 1.0])
        s = 4
        p, _ = ipps_probabilities(weights, s)
        counts = np.zeros(8)
        trials = 6000
        for t in range(trials):
            included, _, _ = order_aware_sample(
                keys, weights, s, np.random.default_rng(t)
            )
            counts[included] += 1
        np.testing.assert_allclose(counts / trials, p, atol=0.03)

    def test_unsorted_input_handled(self):
        keys, weights = make_input(3)
        shuffled = np.random.default_rng(0).permutation(len(keys))
        included, tau, probs = order_aware_sample(
            keys[shuffled], weights[shuffled], 15, np.random.default_rng(1)
        )
        mask = np.zeros(len(keys), bool)
        mask[included] = True
        assert max_interval_discrepancy(
            keys[shuffled], probs, mask
        ) < 2.0 + 1e-9

    def test_summary_interface(self, line_dataset, rng):
        summary = order_aware_summary(line_dataset, 30, rng)
        assert summary.size == 30
        assert summary.dims == 1

    def test_duplicate_keys_allowed(self):
        keys = np.array([5, 5, 5, 9, 9, 2])
        weights = np.ones(6)
        included, tau, _ = order_aware_sample(
            keys, weights, 3, np.random.default_rng(0)
        )
        assert included.size == 3
