"""Tests for hierarchy structures (bit and explicit radix hierarchies)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.hierarchy import (
    BitHierarchy,
    ExplicitHierarchy,
    RadixHierarchy,
    common_node_depth,
    hierarchy_entropy,
    induced_node_count,
)


class TestRadixHierarchy:
    def test_rejects_empty_branchings(self):
        with pytest.raises(ValueError):
            RadixHierarchy([])

    def test_rejects_unary_branching(self):
        with pytest.raises(ValueError):
            RadixHierarchy([2, 1, 2])

    def test_num_leaves_is_product(self):
        h = RadixHierarchy([3, 2, 4])
        assert h.num_leaves == 24
        assert h.size == 24

    def test_depth(self):
        assert RadixHierarchy([2, 2, 2]).depth == 3

    def test_span_decreases_with_depth(self):
        h = RadixHierarchy([3, 2, 4])
        assert h.span(0) == 24
        assert h.span(1) == 8
        assert h.span(2) == 4
        assert h.span(3) == 1

    def test_node_of_root_is_zero(self):
        h = RadixHierarchy([3, 2])
        for key in range(6):
            assert h.node_of(key, 0) == 0

    def test_node_of_leaf_depth_is_key(self):
        h = RadixHierarchy([3, 2])
        for key in range(6):
            assert h.node_of(key, h.depth) == key

    def test_node_of_vectorized(self):
        h = RadixHierarchy([4, 4])
        keys = np.arange(16)
        np.testing.assert_array_equal(h.node_of(keys, 1), keys // 4)

    def test_node_interval_roundtrip(self):
        h = RadixHierarchy([3, 2, 2])
        for depth in range(h.depth + 1):
            for node in range(h.num_leaves // h.span(depth)):
                lo, hi = h.node_interval(depth, node)
                assert hi - lo == h.span(depth)
                for key in (lo, hi - 1):
                    assert h.node_of(key, depth) == node

    def test_path_digits(self):
        h = RadixHierarchy([3, 2])
        assert h.path(0) == (0, 0)
        assert h.path(1) == (0, 1)
        assert h.path(2) == (1, 0)
        assert h.path(5) == (2, 1)

    def test_leaf_of_path_inverse(self):
        h = RadixHierarchy([3, 2, 4])
        for key in range(h.num_leaves):
            assert h.leaf_of_path(h.path(key)) == key

    def test_leaf_of_path_rejects_partial(self):
        h = RadixHierarchy([3, 2])
        with pytest.raises(ValueError):
            h.leaf_of_path((1,))

    def test_leaf_of_path_rejects_bad_digit(self):
        h = RadixHierarchy([3, 2])
        with pytest.raises(ValueError):
            h.leaf_of_path((3, 0))

    def test_lca_depth_same_key(self):
        h = RadixHierarchy([2, 2, 2])
        assert h.lca_depth(5, 5) == h.depth

    def test_lca_depth_siblings(self):
        h = RadixHierarchy([2, 2])
        assert h.lca_depth(0, 1) == 1
        assert h.lca_depth(0, 2) == 0

    def test_lca_depth_out_of_domain(self):
        h = RadixHierarchy([2, 2])
        with pytest.raises(ValueError):
            h.lca_depth(0, 99)

    def test_ancestors_deepest_first(self):
        h = RadixHierarchy([2, 2, 2])
        ancestors = list(h.ancestors(5))
        depths = [d for d, _ in ancestors]
        assert depths == [2, 1, 0]
        assert ancestors[-1] == (0, 0)

    def test_equality_and_hash(self):
        assert RadixHierarchy([2, 3]) == RadixHierarchy([2, 3])
        assert RadixHierarchy([2, 3]) != RadixHierarchy([3, 2])
        assert hash(RadixHierarchy([2, 3])) == hash(RadixHierarchy([2, 3]))


class TestBitHierarchy:
    def test_is_binary_radix(self):
        h = BitHierarchy(4)
        assert h.branchings == (2, 2, 2, 2)
        assert h.num_leaves == 16

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            BitHierarchy(0)

    def test_node_of_is_prefix(self):
        h = BitHierarchy(8)
        assert h.node_of(0b10110001, 4) == 0b1011

    def test_node_of_array(self):
        h = BitHierarchy(8)
        keys = np.array([0b10110001, 0b10100000])
        np.testing.assert_array_equal(h.node_of(keys, 3), [0b101, 0b101])

    def test_span(self):
        h = BitHierarchy(10)
        assert h.span(0) == 1024
        assert h.span(10) == 1

    def test_lca_depth_matches_generic(self):
        h = BitHierarchy(8)
        generic = RadixHierarchy([2] * 8)
        rng = np.random.default_rng(3)
        for _ in range(50):
            a, b = rng.integers(0, 256, size=2)
            assert h.lca_depth(int(a), int(b)) == generic.lca_depth(
                int(a), int(b)
            )

    def test_prefix_str(self):
        h = BitHierarchy(8)
        assert h.prefix_str(0, 0) == "*"
        assert h.prefix_str(3, 0b101) == "101*"

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_lca_depth_property(self, a, b):
        h = BitHierarchy(8)
        depth = h.lca_depth(a, b)
        assert h.node_of(a, depth) == h.node_of(b, depth)
        if depth < h.depth:
            assert h.node_of(a, depth + 1) != h.node_of(b, depth + 1)


class TestExplicitHierarchy:
    def test_with_approx_leaves_reaches_target(self):
        h = ExplicitHierarchy.with_approx_leaves(1000)
        assert h.num_leaves >= 1000
        previous = h.num_leaves
        for b in h.branchings:
            previous //= b
        assert previous == 1

    def test_with_approx_leaves_rejects_tiny(self):
        with pytest.raises(ValueError):
            ExplicitHierarchy.with_approx_leaves(1)

    def test_varying_branchings_kept(self):
        h = ExplicitHierarchy((16, 8, 4, 2))
        assert h.branchings == (16, 8, 4, 2)
        assert h.num_leaves == 1024
        assert h.num_levels == 4


class TestHelpers:
    def test_common_node_depth_single_group(self):
        h = BitHierarchy(6)
        keys = np.array([8, 9, 10, 11])  # all under prefix 0b0010 (depth 4)
        assert common_node_depth(h, keys) == 4

    def test_common_node_depth_empty_raises(self):
        h = BitHierarchy(4)
        with pytest.raises(ValueError):
            common_node_depth(h, np.array([], dtype=np.int64))

    def test_induced_node_count_bounds(self):
        h = BitHierarchy(10)
        rng = np.random.default_rng(1)
        keys = rng.choice(1024, size=40, replace=False)
        count = induced_node_count(h, keys)
        assert 1 <= count <= len(keys) - 1

    def test_induced_node_count_single_key(self):
        h = BitHierarchy(4)
        assert induced_node_count(h, np.array([3])) == 0

    def test_hierarchy_entropy_uniform_vs_clustered(self):
        h = BitHierarchy(8)
        uniform_keys = np.arange(256)
        clustered_keys = np.arange(16)  # all under one depth-4 node
        weights = np.ones(256)
        top = hierarchy_entropy(h, uniform_keys, weights, depth=4)
        low = hierarchy_entropy(h, clustered_keys, np.ones(16), depth=4)
        assert top > low

    def test_hierarchy_entropy_zero_weight(self):
        h = BitHierarchy(4)
        assert hierarchy_entropy(h, np.array([1]), np.array([0.0]), 2) == 0.0
