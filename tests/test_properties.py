"""Hypothesis property-based tests on core invariants.

These complement the per-module statistical tests with randomized
structural invariants: probability-mass conservation, sample-size
exactness, estimator consistency, and summary-interface contracts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aware.hierarchy_sampler import hierarchy_aware_sample
from repro.aware.order_sampler import order_aware_sample
from repro.core.aggregation import aggregate_pool, finalize_leftover
from repro.core.discrepancy import (
    max_hierarchy_discrepancy,
    max_interval_discrepancy,
)
from repro.core.ipps import ipps_probabilities
from repro.core.varopt import StreamVarOpt, varopt_sample
from repro.structures.hierarchy import BitHierarchy

weights_strategy = st.lists(
    st.floats(min_value=0.1, max_value=1000.0, allow_nan=False),
    min_size=2,
    max_size=60,
)


@given(weights_strategy, st.integers(1, 30), st.integers(0, 2**31))
@settings(max_examples=80, deadline=None)
def test_varopt_size_exact_for_any_input(weights, s, seed):
    w = np.asarray(weights)
    included, tau = varopt_sample(w, s, np.random.default_rng(seed))
    assert included.size == min(s, np.count_nonzero(w > 0))


@given(weights_strategy, st.integers(1, 20), st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_stream_varopt_size_and_threshold(weights, s, seed):
    sampler = StreamVarOpt(s, np.random.default_rng(seed))
    for i, w in enumerate(weights):
        sampler.feed((i,), float(w))
    assert sampler.current_size == min(s, len(weights))
    summary = sampler.summary()
    # Adjusted total within a loose range of the truth (sanity, not
    # statistics: unbiasedness is tested elsewhere).
    assert summary.estimate_total() >= 0.0


@given(weights_strategy, st.integers(1, 25), st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_order_aware_interval_theorem_any_input(weights, s, seed):
    w = np.asarray(weights)
    keys = np.arange(w.size)
    included, tau, probs = order_aware_sample(
        keys, w, s, np.random.default_rng(seed)
    )
    mask = np.zeros(w.size, bool)
    mask[included] = True
    assert max_interval_discrepancy(keys, probs, mask) < 2.0 + 1e-6


@given(weights_strategy, st.integers(1, 25), st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_hierarchy_aware_node_theorem_any_input(weights, s, seed):
    w = np.asarray(weights)
    h = BitHierarchy(8)
    rng = np.random.default_rng(seed)
    keys = rng.choice(256, size=w.size, replace=False)
    included, tau, probs = hierarchy_aware_sample(
        keys, w, s, h, np.random.default_rng(seed + 1)
    )
    mask = np.zeros(w.size, bool)
    mask[included] = True
    assert max_hierarchy_discrepancy(h, keys, probs, mask) < 1.0 + 1e-6


@given(
    st.lists(st.floats(min_value=0.01, max_value=0.99), min_size=1,
             max_size=50),
    st.integers(0, 2**31),
)
@settings(max_examples=100, deadline=None)
def test_aggregate_pool_conserves_mass(probabilities, seed):
    p = np.asarray(probabilities)
    before = p.sum()
    rng = np.random.default_rng(seed)
    leftover = aggregate_pool(p, range(p.size), rng)
    assert p.sum() == pytest.approx(before, abs=1e-6)
    # All entries set except possibly the leftover.
    for i in range(p.size):
        if leftover is None or i != leftover:
            assert p[i] in (0.0, 1.0) or p[i] < 1e-9 or p[i] > 1 - 1e-9


@given(weights_strategy, st.integers(1, 20))
@settings(max_examples=60, deadline=None)
def test_ipps_probabilities_bounded_and_monotone(weights, s):
    w = np.asarray(weights)
    p, tau = ipps_probabilities(w, s)
    assert ((p >= 0) & (p <= 1)).all()
    # Monotone in the weights: heavier keys never get lower probability.
    order = np.argsort(w)
    assert (np.diff(p[order]) >= -1e-12).all()


@given(weights_strategy, st.integers(1, 20), st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_sample_summary_total_nonnegative_consistent(weights, s, seed):
    from repro.core.types import Dataset
    from repro.core.varopt import varopt_summary

    w = np.asarray(weights)
    data = Dataset.one_dimensional(np.arange(w.size), w, size=w.size + 1)
    summary = varopt_summary(data, s, np.random.default_rng(seed))
    full = data.domain.full_box()
    # Query over the full domain equals the estimated total.
    assert summary.query(full) == pytest.approx(summary.estimate_total())
