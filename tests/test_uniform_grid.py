"""Tests for the uniform hypercube sampler (Section 4, uniform case)."""

import numpy as np
import pytest

from repro.aware.uniform_grid import boundary_cell_count, uniform_grid_sample
from repro.core.bounds import product_structure_discrepancy
from repro.structures.ranges import Box


class TestUniformGridSample:
    def test_sample_size_is_perfect_power(self):
        rng = np.random.default_rng(0)
        points = uniform_grid_sample((1024, 1024), 100, rng)
        assert points.shape == (100, 2)  # 10^2

    def test_rounds_down_to_power(self):
        rng = np.random.default_rng(0)
        points = uniform_grid_sample((1024, 1024), 120, rng)
        assert points.shape == (100, 2)  # h=10 still

    def test_one_point_per_cell(self):
        rng = np.random.default_rng(1)
        h = 8
        size = 64
        points = uniform_grid_sample((size, size), h * h, rng)
        cell_w = size // h
        cells = {(int(x) // cell_w, int(y) // cell_w) for x, y in points}
        assert len(cells) == h * h

    def test_points_inside_domain(self):
        rng = np.random.default_rng(2)
        points = uniform_grid_sample((100, 50), 25, rng)
        assert points[:, 0].max() < 100
        assert points[:, 1].max() < 50
        assert points.min() >= 0

    def test_one_dimensional(self):
        rng = np.random.default_rng(3)
        points = uniform_grid_sample((1000,), 10, rng)
        assert points.shape == (10, 1)

    def test_validation(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            uniform_grid_sample((), 4, rng)
        with pytest.raises(ValueError):
            uniform_grid_sample((10, 10), 0, rng)
        with pytest.raises(ValueError):
            uniform_grid_sample((2, 2), 100, rng)  # domain too small

    def test_box_count_discrepancy_within_boundary_bound(self):
        # |#points in R - s * vol(R)/vol| <= #boundary cells: the only
        # random contribution comes from cells cut by R's boundary.
        rng = np.random.default_rng(5)
        size = 256
        s = 16 * 16
        points = uniform_grid_sample((size, size), s, rng)
        box = Box((10, 30), (200, 170))
        expected = s * box.volume / (size * size)
        actual = int(box.contains(points).sum())
        boundary = boundary_cell_count((size, size), s, box)
        assert abs(actual - expected) <= boundary + 1e-9

    def test_boundary_cells_obey_section4_bound(self):
        size = 256
        s = 16 * 16
        box = Box((10, 30), (200, 170))
        boundary = boundary_cell_count((size, size), s, box)
        assert boundary <= product_structure_discrepancy(s, 2)
