"""Flat interval-table store: parity, invariants, pushdown, codec.

The contract under test is *bit*-identity, not approximate closeness:
the flat :class:`~repro.structures.intervals.IntervalTable` kernels,
the SQLite pushdown backend, and the retained pointer-path kernels
must produce the same IEEE doubles for every battery.  The suite
sweeps 30 seeds across the streaming q-digest (fresh, merged, wire
round-tripped, post-restore engines), the batch q-digest (1-D all
three partial modes, 2-D and merged-overlapping dense paths), radix
hierarchies, kd trees, plus the pre/post-order invariants, the
budget-triggered spill, the wire codec, and the mutation-counter
regression from this PR's cache audit.
"""

import numpy as np
import pytest

from repro.backends.pushdown import PushdownStore
from repro.core.types import Dataset
from repro.distributed import codec
from repro.structures.hierarchy import BitHierarchy, ExplicitHierarchy
from repro.structures.intervals import IntervalTable
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box
from repro.summaries.qdigest import QDigestSummary
from repro.summaries.qdigest_stream import StreamingQDigest

SEEDS = range(30)


def _battery_1d(rng, size, n):
    lows = rng.integers(0, size, n)
    spans = rng.integers(0, max(1, size // 8), n)
    highs = np.minimum(lows + spans, size - 1)
    return [Box((int(lo),), (int(hi),)) for lo, hi in zip(lows, highs)]


def _stream_digest(rng, bits):
    digest = StreamingQDigest(
        bits,
        k=int(rng.integers(4, 64)),
        compress_every=int(rng.integers(8, 300)),
    )
    n = int(rng.integers(50, 4000))
    digest.update(
        rng.integers(0, 1 << bits, n), rng.random(n) + 0.01
    )
    return digest


def _answers(summary, boxes, *, flat):
    summary.flat_kernel = flat
    try:
        return np.asarray(summary.query_many(boxes))
    finally:
        summary.flat_kernel = True


# ----------------------------------------------------------------------
# Streaming q-digest: flat kernel vs retained per-depth kernel
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_stream_flat_matches_retained(seed):
    rng = np.random.default_rng(seed)
    bits = int(rng.integers(4, 18))
    digest = _stream_digest(rng, bits)
    boxes = _battery_1d(rng, 1 << bits, int(rng.integers(1, 500)))
    flat = _answers(digest, boxes, flat=True)
    retained = _answers(digest, boxes, flat=False)
    repeat = _answers(digest, boxes, flat=True)  # compiled-scan replay
    assert (flat == retained).all()
    assert (repeat == retained).all()


@pytest.mark.parametrize("seed", SEEDS)
def test_stream_merged_and_restored_parity(seed):
    rng = np.random.default_rng(1000 + seed)
    bits = int(rng.integers(4, 14))
    a = _stream_digest(rng, bits)
    b = _stream_digest(rng, bits)
    merged = a.merge(b)
    wired = codec.from_bytes(codec.to_bytes(merged))
    boxes = _battery_1d(rng, 1 << bits, int(rng.integers(1, 300)))
    for digest in (merged, wired):
        flat = _answers(digest, boxes, flat=True)
        retained = _answers(digest, boxes, flat=False)
        assert (flat == retained).all()
    # The wire round trip preserves the node tree, so the two flat
    # kernels agree bit-for-bit as well.
    assert (
        _answers(merged, boxes, flat=True)
        == _answers(wired, boxes, flat=True)
    ).all()


def test_stream_exhaustive_small_domain():
    """Every (lo, hi) pair of a 4-bit domain, all three paths."""
    rng = np.random.default_rng(99)
    digest = StreamingQDigest(4, k=3, compress_every=7)
    digest.update(rng.integers(0, 16, 500), rng.random(500) + 0.1)
    boxes = [
        Box((lo,), (hi,)) for lo in range(16) for hi in range(lo, 16)
    ]
    retained = _answers(digest, boxes, flat=False)
    assert (_answers(digest, boxes, flat=True) == retained).all()
    digest.pushdown_budget = 0
    try:
        assert (_answers(digest, boxes, flat=True) == retained).all()
    finally:
        del digest.pushdown_budget
    scalar = np.asarray([digest.query(box) for box in boxes])
    np.testing.assert_allclose(
        _answers(digest, boxes, flat=True), scalar,
        rtol=1e-9, atol=1e-9 * digest.total,
    )


# ----------------------------------------------------------------------
# Pushdown backend: out-of-core answers bit-identical, spill on budget
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(10))
def test_pushdown_matches_in_memory(seed, tmp_path):
    rng = np.random.default_rng(2000 + seed)
    bits = int(rng.integers(4, 16))
    digest = _stream_digest(rng, bits)
    table = digest.interval_table()
    store = PushdownStore(str(tmp_path / "push.sqlite"))
    store.put("t", table)
    boxes = _battery_1d(rng, 1 << bits, int(rng.integers(1, 300)))
    lo = np.asarray([box.lows[0] for box in boxes], dtype=np.int64)
    hi = np.asarray([box.highs[0] for box in boxes], dtype=np.int64)
    in_memory = table.scan_bounds(lo, hi)
    pushed = store.range_sums("t", lo, hi)
    assert (pushed == in_memory).all()
    # Round-tripping the stored table is column-exact.
    assert store.get("t").equals(table)
    store.close()


def test_budget_cap_forces_spill_bit_identical():
    """The ISSUE's acceptance demo: cap the RAM budget below the
    summary's resident size and the battery must be answered from the
    on-disk store, bit-identical to the in-memory kernels."""
    rng = np.random.default_rng(7)
    digest = StreamingQDigest(14, k=80, compress_every=64)
    digest.update(rng.integers(0, 1 << 14, 20_000), np.ones(20_000))
    boxes = _battery_1d(rng, 1 << 14, 400)
    in_memory = _answers(digest, boxes, flat=True)
    retained = _answers(digest, boxes, flat=False)
    table = digest.interval_table()
    digest.pushdown_budget = table.nbytes // 2  # below the summary size
    try:
        spilled = _answers(digest, boxes, flat=True)
        # The spill actually engaged (the backend memo exists).
        assert "_spill_store" in digest.__dict__
    finally:
        del digest.pushdown_budget
    assert (spilled == in_memory).all()
    assert (spilled == retained).all()


def test_pushdown_store_management(tmp_path):
    rng = np.random.default_rng(5)
    t1 = _stream_digest(rng, 8).interval_table()
    t2 = _stream_digest(rng, 8).interval_table()
    store = PushdownStore(str(tmp_path / "m.sqlite"))
    store.put("a", t1)
    store.put("b", t2)
    assert store.table_ids() == ["a", "b"]
    store.put("a", t2)  # replace
    assert store.get("a").equals(t2)
    store.delete("a")
    assert store.table_ids() == ["b"]
    with pytest.raises(KeyError):
        store.get("a")
    handle = store.handle("b")
    lo = np.asarray([0, 3], dtype=np.int64)
    hi = np.asarray([255, 200], dtype=np.int64)
    assert (handle.range_sums(lo, hi) == t2.scan_bounds(lo, hi)).all()
    store.close()


def test_pushdown_rejects_multidim(tmp_path):
    table = IntervalTable.from_leaves(
        np.asarray([[0, 0], [2, 2]]),
        np.asarray([[1, 1], [3, 3]]),
        np.asarray([1.0, 2.0]),
    )
    store = PushdownStore(str(tmp_path / "r.sqlite"))
    with pytest.raises(ValueError):
        store.put("t", table)
    store.close()


# ----------------------------------------------------------------------
# Batch q-digest: flat 1-D leaf path vs retained; dense paths unchanged
# ----------------------------------------------------------------------
def _dataset_1d(rng, size, n):
    coords = rng.integers(0, size, size=(n, 1))
    weights = 1.0 + rng.pareto(1.1, n)
    domain = ProductDomain([OrderedDomain(size)])
    return Dataset(coords=coords, weights=weights, domain=domain)


@pytest.mark.parametrize("seed", SEEDS)
def test_qdigest_1d_flat_matches_retained(seed):
    rng = np.random.default_rng(3000 + seed)
    size = 1 << int(rng.integers(6, 14))
    data = _dataset_1d(rng, size, int(rng.integers(100, 3000)))
    mode = ("half", "uniform", "lower")[seed % 3]
    digest = QDigestSummary(data, int(rng.integers(8, 200)), partial=mode)
    boxes = _battery_1d(rng, size, int(rng.integers(1, 300)))
    flat = _answers(digest, boxes, flat=True)
    retained = _answers(digest, boxes, flat=False)
    assert (flat == retained).all()


def test_qdigest_merged_overlapping_uses_dense_path():
    """Merged shards may overlap spatially; both flag settings must
    agree (they both fall through to the dense kernel)."""
    rng = np.random.default_rng(11)
    size = 1 << 10
    a = QDigestSummary(_dataset_1d(rng, size, 800), 50)
    b = QDigestSummary(_dataset_1d(rng, size, 800), 50)
    merged = a.merge(b)
    boxes = _battery_1d(rng, size, 200)
    flat = _answers(merged, boxes, flat=True)
    retained = _answers(merged, boxes, flat=False)
    assert (flat == retained).all()
    scalar = np.asarray([merged.query(box) for box in boxes])
    assert (flat == scalar).all()


def test_qdigest_2d_unaffected():
    rng = np.random.default_rng(13)
    size = 64
    coords = rng.integers(0, size, size=(500, 2))
    domain = ProductDomain([OrderedDomain(size), OrderedDomain(size)])
    data = Dataset(coords=coords, weights=np.ones(500), domain=domain)
    digest = QDigestSummary(data, 60)
    boxes = []
    for _ in range(100):
        lo = rng.integers(0, size, 2)
        hi = np.minimum(lo + rng.integers(0, 16, 2), size - 1)
        boxes.append(Box(tuple(int(v) for v in lo),
                         tuple(int(v) for v in hi)))
    flat = _answers(digest, boxes, flat=True)
    retained = _answers(digest, boxes, flat=False)
    assert (flat == retained).all()


# ----------------------------------------------------------------------
# Hierarchy and kd encoders: exactness + pre/post invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(10))
def test_hierarchy_table_leaf_level_exact(seed):
    rng = np.random.default_rng(4000 + seed)
    hierarchy = (
        BitHierarchy(int(rng.integers(4, 12))) if seed % 2
        else ExplicitHierarchy.with_approx_leaves(
            int(rng.integers(64, 4096)))
    )
    n = int(rng.integers(50, 2000))
    keys = rng.integers(0, hierarchy.num_leaves, n)
    weights = rng.random(n) + 0.01
    table = hierarchy.interval_table(keys, weights)
    assert table.kind == "aggregate"
    # Leaf-level range scans are exact sums over the raw keys.
    boxes = _battery_1d(rng, hierarchy.num_leaves, 100)
    lo = np.asarray([box.lows[0] for box in boxes], dtype=np.int64)
    hi = np.asarray([box.highs[0] for box in boxes], dtype=np.int64)
    got = table.scan_bounds(lo, hi)
    expect = np.asarray([
        weights[(keys >= a) & (keys <= b)].sum()
        for a, b in zip(lo, hi)
    ])
    np.testing.assert_allclose(got, expect, rtol=1e-12, atol=1e-9)
    # Every node's stored mass equals its subtree's leaf-row mass and
    # the exact weight of keys under it (the aggregate invariant).
    leaf_depth = int(table.level_values[-1])
    for row in rng.integers(0, len(table), 25):
        mask = table.descendant_mask(int(row))
        leaf_rows = mask & (table.level == leaf_depth)
        np.testing.assert_allclose(
            table.mass[int(row)],
            table.mass[leaf_rows].sum(),
            rtol=1e-12, atol=1e-9,
        )


def test_hierarchy_table_ancestor_rows_match_pointer_walk():
    hierarchy = BitHierarchy(8)
    rng = np.random.default_rng(21)
    keys = rng.integers(0, 256, 500)
    table = hierarchy.interval_table(keys, np.ones(500))
    for key in rng.integers(0, 256, 20):
        rows = table.ancestor_rows((int(key),))
        got = {
            (int(table.level[r]), int(table.lo[r, 0]))
            for r in rows
        }
        expect = set()
        for depth in range(hierarchy.depth + 1):
            node = int(hierarchy.node_of(int(key), depth))
            lo, _hi = hierarchy.node_interval(depth, node)
            if ((keys // hierarchy.span(depth)) == node).any():
                expect.add((depth, lo))
        assert got == expect


def test_kd_encoder_pre_post_invariants():
    from repro.aware.kd import build_kd_hierarchy

    rng = np.random.default_rng(17)
    size = 64
    coords = rng.integers(0, size, size=(400, 2))
    domain = ProductDomain([OrderedDomain(size), OrderedDomain(size)])
    root = build_kd_hierarchy(coords, 1.0 + rng.random(400),
                              domain=domain, leaf_mass=8.0)
    table = IntervalTable.from_kd(root)

    def walk(node, depth, out):
        out.append((depth, tuple(node.box.lows), tuple(node.box.highs),
                    float(node.mass)))
        for child in (node.left, node.right):
            if child is not None:
                walk(child, depth + 1, out)

    nodes = []
    walk(root, 0, nodes)
    assert len(table) == len(nodes)
    # pre/post ranks are permutations; descendant windows match the
    # recorded pointer-tree subtrees exactly.
    assert sorted(table.pre.tolist()) == list(range(len(table)))
    assert sorted(table.post.tolist()) == list(range(len(table)))
    root_row = int(np.flatnonzero(table.level == 0)[0])
    assert table.descendant_mask(root_row).all()
    for row in rng.integers(0, len(table), 30):
        mask = table.descendant_mask(int(row))
        # Containment mirrors the box nesting of a kd subtree.
        inside = (
            (table.lo >= table.lo[int(row)]).all(axis=1)
            & (table.hi <= table.hi[int(row)]).all(axis=1)
        )
        assert (mask <= inside).all()
        np.testing.assert_allclose(
            table.subtree_mass(int(row)), table.mass[int(row)],
            rtol=1e-12,
        )


# ----------------------------------------------------------------------
# Wire codec + engine restore
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
def test_interval_table_codec_round_trip(seed):
    rng = np.random.default_rng(5000 + seed)
    table = _stream_digest(rng, int(rng.integers(4, 14))).interval_table()
    assert codec.from_bytes(codec.to_bytes(table)).equals(table)


def test_kd_table_codec_round_trip_2d():
    from repro.aware.kd import build_kd_hierarchy

    rng = np.random.default_rng(23)
    coords = rng.integers(0, 32, size=(200, 2))
    domain = ProductDomain([OrderedDomain(32), OrderedDomain(32)])
    root = build_kd_hierarchy(coords, np.ones(200), domain=domain,
                              leaf_mass=8.0)
    table = IntervalTable.from_kd(root)
    assert codec.from_bytes(codec.to_bytes(table)).equals(table)


@pytest.mark.parametrize("seed", range(5))
def test_restored_engine_flat_parity(seed, tmp_path):
    """A crash-restored engine's digests serve flat answers identical
    to the retained kernels (and to the original engine)."""
    from repro.durable import LogCheckpointStore
    from repro.stream.engine import StreamEngine

    rng = np.random.default_rng(6000 + seed)
    size = 1 << 10
    domain = ProductDomain([OrderedDomain(size)])
    store = LogCheckpointStore(str(tmp_path / "ckpt"))
    engine = StreamEngine(domain, "qdigest-stream", 150,
                          store=store, stream_id="s")
    for _ in range(8):
        n = int(rng.integers(20, 200))
        engine.process((rng.integers(0, size, n), rng.random(n)))
    engine.checkpoint()
    restored = StreamEngine.restore(store, "s")
    boxes = _battery_1d(rng, size, 150)
    orig = engine.query_many_now(boxes)["qdigest-stream"]
    back = restored.query_many_now(boxes)["qdigest-stream"]
    assert orig == back
    digest = restored.snapshot("qdigest-stream")
    flat = _answers(digest, boxes, flat=True)
    retained = _answers(digest, boxes, flat=False)
    assert (flat == retained).all()


# ----------------------------------------------------------------------
# Mutation-counter regression (the PR's cache audit)
# ----------------------------------------------------------------------
def test_cache_invalidation_on_every_mutation_path():
    """merge / from_state / snapshot / update all produce digests whose
    cached tables reflect the *current* counts -- querying first and
    mutating after must never serve stale answers."""
    rng = np.random.default_rng(31)
    bits = 8
    box = [Box((10,), (200,))]

    a = StreamingQDigest(bits, k=8, compress_every=10_000)
    a.update(rng.integers(0, 256, 300), np.ones(300))
    before = a.query_many(box)[0]  # populate the cache

    # update() after a cached query: answers move with the counts.
    a.update(rng.integers(0, 256, 300), np.ones(300))
    after_update = a.query_many(box)[0]
    assert after_update != before
    a.flat_kernel = False
    assert a.query_many(box)[0] == after_update
    a.flat_kernel = True

    # merge() result is a fresh digest whose table matches its counts.
    b = StreamingQDigest(bits, k=8, compress_every=10_000)
    b.update(rng.integers(0, 256, 300), np.ones(300))
    b.query_many(box)
    merged = a.merge(b)
    assert merged._mutations > 0
    got = merged.query_many(box)[0]
    merged.flat_kernel = False
    assert merged.query_many(box)[0] == got
    merged.flat_kernel = True
    scalar = merged.query(box[0])
    np.testing.assert_allclose(got, scalar, rtol=1e-9,
                               atol=1e-9 * merged.total)

    # from_state digests are marked mutated relative to fresh ones.
    wired = StreamingQDigest.from_state(merged.to_state())
    assert wired._mutations > 0
    assert wired.query_many(box)[0] == got

    # snapshot() compresses a copy; its cache keys off its own counts.
    snap = a.snapshot()
    snap_ans = snap.query_many(box)[0]
    snap.flat_kernel = False
    assert snap.query_many(box)[0] == snap_ans


def test_direct_counts_mutation_requires_mutated():
    """The invariant the audit pins: rebinding ``_counts`` without
    ``_mutated()`` is what the bump sites prevent.  ``_mutated()``
    must invalidate both the retained per-depth cache and the flat
    table memo."""
    rng = np.random.default_rng(37)
    digest = StreamingQDigest(8, k=8, compress_every=10_000)
    digest.update(rng.integers(0, 256, 200), np.ones(200))
    box = [Box((0,), (255,))]
    digest.query_many(box)
    digest.flat_kernel = False
    digest.query_many(box)
    digest.flat_kernel = True
    assert "_flat_table" in digest.__dict__
    assert "_interval_arrays" in digest.__dict__
    marker_flat = digest.__dict__["_flat_table"][1]
    marker_depth = digest.__dict__["_interval_arrays"][1]
    digest._mutated()
    digest.query_many(box)
    assert digest.__dict__["_flat_table"][1] is not marker_flat
    digest.flat_kernel = False
    digest.query_many(box)
    digest.flat_kernel = True
    assert digest.__dict__["_interval_arrays"][1] is not marker_depth
