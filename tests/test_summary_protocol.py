"""Interface hygiene shared by all summaries.

``len()``/``size`` consistency, iterator/len consistency of query
objects, Sequence-agnostic ``query_many``/``batch_query_sums`` inputs,
and the per-snapshot sort-order cache.
"""

import numpy as np
import pytest

from repro.core.estimator import SampleSummary
from repro.core.types import Dataset
from repro.core.varopt import varopt_summary
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain
from repro.structures.ranges import (
    Box,
    MultiRangeQuery,
    SortOrderCache,
    batch_query_sums,
)
from repro.summaries.exact import ExactSummary
from repro.summaries.qdigest import QDigestSummary
from repro.summaries.qdigest_stream import StreamingQDigest
from repro.summaries.sketch import DyadicSketchSummary
from repro.summaries.wavelet import WaveletSummary


def skewed_dataset(n=600, seed=5, dims=2):
    rng = np.random.default_rng(seed)
    size = 1 << 16
    coords = rng.integers(0, size, size=(n, dims))
    weights = 1.0 + rng.pareto(1.4, size=n)
    domain = ProductDomain([OrderedDomain(size) for _ in range(dims)])
    return Dataset(coords=coords, weights=weights, domain=domain)


def all_summaries():
    data = skewed_dataset()
    one_d = skewed_dataset(dims=1)
    digest = StreamingQDigest(16, 20)
    digest.update(one_d.coords, one_d.weights)
    return [
        varopt_summary(data, 80, np.random.default_rng(0)),
        ExactSummary(data),
        QDigestSummary(data, 50),
        WaveletSummary(one_d, 64),
        DyadicSketchSummary(data, 256),
        digest,
    ]


class TestLenSizeConsistency:
    def test_len_equals_size_for_every_summary(self):
        for summary in all_summaries():
            assert len(summary) == summary.size, type(summary).__name__

    def test_multirange_len_iter_consistency(self):
        boxes = [Box((0,), (10,)), Box((20,), (30,)), Box((40,), (41,))]
        query = MultiRangeQuery(boxes)
        assert len(query) == query.num_ranges == 3
        assert list(query) == list(query.boxes)
        assert len(list(iter(query))) == len(query)


class TestSequenceAgnosticQueries:
    def queries(self):
        return (
            Box((0, 0), ((1 << 15) - 1, (1 << 16) - 1)),
            MultiRangeQuery([
                Box((0, 0), ((1 << 14) - 1, (1 << 14) - 1)),
                Box((1 << 15, 1 << 15), ((1 << 16) - 1, (1 << 16) - 1)),
            ]),
        )

    def test_query_many_accepts_tuples_and_generators(self):
        data = skewed_dataset()
        queries = self.queries()
        for summary in (
            varopt_summary(data, 80, np.random.default_rng(0)),
            ExactSummary(data),
            QDigestSummary(data, 50),
        ):
            from_list = summary.query_many(list(queries))
            from_tuple = summary.query_many(queries)
            from_gen = summary.query_many(q for q in queries)
            assert from_tuple == pytest.approx(from_list)
            assert from_gen == pytest.approx(from_list)

    def test_batch_query_sums_accepts_any_sequence(self):
        data = skewed_dataset()
        queries = self.queries()
        from_list = batch_query_sums(list(queries), data.coords, data.weights)
        from_tuple = batch_query_sums(queries, data.coords, data.weights)
        np.testing.assert_allclose(from_tuple, from_list)

    def test_base_query_multi_accepts_bare_box(self):
        data = skewed_dataset()
        digest = QDigestSummary(data, 50)
        box = self.queries()[0]
        assert digest.query_multi(box) == pytest.approx(digest.query(box))


class TestSortOrderCache:
    def test_cached_answers_match_uncached(self):
        data = skewed_dataset()
        queries = list(self.battery(data))
        cache = SortOrderCache()
        uncached = batch_query_sums(queries, data.coords, data.weights)
        first = batch_query_sums(
            queries, data.coords, data.weights, cache=cache, version=1
        )
        again = batch_query_sums(
            queries, data.coords, data.weights, cache=cache, version=1
        )
        np.testing.assert_allclose(first, uncached)
        np.testing.assert_allclose(again, uncached)

    def battery(self, data, n=40, seed=3):
        rng = np.random.default_rng(seed)
        size = data.domain.sizes[0]
        for _ in range(n):
            lo = rng.integers(0, size // 2, size=data.dims)
            hi = lo + rng.integers(1, size // 2, size=data.dims)
            yield Box(tuple(int(v) for v in lo), tuple(int(v) for v in hi))

    def test_version_change_recomputes(self):
        data = skewed_dataset(n=300)
        grown = skewed_dataset(n=600)
        queries = list(self.battery(data))
        cache = SortOrderCache()
        small = batch_query_sums(
            queries, data.coords, data.weights, cache=cache, version=1
        )
        # New snapshot, new version: the cache must not serve v1 orders.
        big = batch_query_sums(
            queries, grown.coords, grown.weights, cache=cache, version=2
        )
        reference = batch_query_sums(queries, grown.coords, grown.weights)
        np.testing.assert_allclose(big, reference)
        assert not np.allclose(big, small)

    def test_invalidate_forces_recompute(self):
        data = skewed_dataset(n=200)
        cache = SortOrderCache()
        queries = list(self.battery(data, n=5))
        batch_query_sums(queries, data.coords, data.weights,
                         cache=cache, version=1)
        cache.invalidate()
        out = batch_query_sums(queries, data.coords, data.weights,
                               cache=cache, version=1)
        reference = batch_query_sums(queries, data.coords, data.weights)
        np.testing.assert_allclose(out, reference)

    def test_exact_summary_version_tracks_updates(self):
        """ExactSummary keys its cache on the update version."""
        store = ExactSummary.empty(dims=1)
        store.update(np.arange(50).reshape(-1, 1), np.ones(50))
        queries = [Box((0,), (24,)), Box((25,), (49,))]
        assert store.query_many(queries) == pytest.approx([25.0, 25.0])
        store.update(np.arange(50).reshape(-1, 1), np.ones(50))
        # The second battery must see the new rows, not stale orders.
        assert store.query_many(queries) == pytest.approx([50.0, 50.0])

    def test_sample_summary_cache_consistency(self):
        data = skewed_dataset()
        sample = varopt_summary(data, 100, np.random.default_rng(1))
        queries = list(self.battery(data))
        first = sample.query_many(queries)
        second = sample.query_many(queries)  # served from cached orders
        reference = [sample.query(q) for q in queries]
        assert first == pytest.approx(reference)
        assert second == pytest.approx(reference)
