"""Deterministic equivalence of the vectorized build kernels.

Kernels that consume no randomness (threshold scan, kd routing,
partition cell codes, grid boundary counts, dataset normalization,
sharding) must produce bit-identical results to their scalar
formulations; this suite pins that down.  The RNG-consuming chain
kernels are validated statistically in ``test_kernel_equivalence.py``.
"""

import numpy as np
import pytest

from repro.aware.kd import build_kd_hierarchy, kd_cell_ids, kd_leaves
from repro.aware.uniform_grid import boundary_cell_count
from repro.core.aggregation import SET_EPS, aggregate_pool
from repro.core.chain import (
    chain_aggregate,
    run_starts,
    segmented_chain_aggregate,
)
from repro.core.ipps import PROB_EPS, ipps_probabilities, ipps_threshold
from repro.core.types import Dataset
from repro.engine.shard import shard_dataset, shard_indices
from repro.structures.hierarchy import BitHierarchy
from repro.structures.product import ProductDomain, line_domain
from repro.structures.ranges import Box
from repro.twopass.partitions import (
    DisjointPartition,
    HierarchyAncestorPartition,
    KDPartition,
    OrderPartition,
)


def _ipps_threshold_scalar(weights, s):
    """The historical scalar k-scan, kept as the reference."""
    w = np.asarray(weights, dtype=float)
    w = w[w > 0]
    n = w.size
    if s >= n:
        return 0.0
    w_sorted = np.sort(w)[::-1]
    tail_sums = np.concatenate((np.cumsum(w_sorted[::-1])[::-1], [0.0]))
    max_k = int(min(n - 1, np.floor(s)))
    for k in range(0, max_k + 1):
        denom = s - k
        if denom <= 0:
            break
        tau = tail_sums[k] / denom
        upper_ok = k == 0 or w_sorted[k - 1] >= tau * (1 - PROB_EPS)
        lower_ok = w_sorted[k] < tau * (1 + PROB_EPS)
        if upper_ok and lower_ok:
            return float(tau)
    return float(tail_sums[max_k] / (s - max_k))


class TestIppsThresholdVectorized:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scalar_scan(self, seed):
        rng = np.random.default_rng(seed)
        w = 1.0 + rng.pareto(1.2, size=500)
        for s in (1, 3, 17.5, 100, 499, 500, 600):
            assert ipps_threshold(w, s) == _ipps_threshold_scalar(w, s)

    def test_matches_on_edge_shapes(self):
        cases = [
            (np.array([5.0]), 0.5),
            (np.array([1.0, 1.0, 1.0, 1.0]), 2),
            (np.array([10.0, 1.0, 1.0]), 2),
            (np.array([0.0, 3.0, 0.0, 2.0]), 1),
            (np.full(50, 2.0), 49),
        ]
        for w, s in cases:
            assert ipps_threshold(w, s) == _ipps_threshold_scalar(w, s)

    def test_defining_equation(self):
        rng = np.random.default_rng(3)
        w = rng.exponential(2.0, size=400)
        for s in (5, 40, 200):
            p, tau = ipps_probabilities(w, s)
            assert np.isclose(p.sum(), s, rtol=1e-9)


class TestKDRouting:
    def test_cell_ids_match_locate(self):
        rng = np.random.default_rng(11)
        coords = rng.integers(0, 1000, size=(800, 2))
        masses = rng.random(800)
        tree = build_kd_hierarchy(coords, masses, leaf_mass=2.0)
        ids = kd_cell_ids(tree, coords)
        expected = np.array(
            [tree.locate(row).cell_id for row in coords], dtype=np.int64
        )
        np.testing.assert_array_equal(ids, expected)

    def test_cell_ids_for_points_off_the_tree(self):
        # Routing must work for points the tree was not built from.
        rng = np.random.default_rng(12)
        coords = rng.integers(0, 1000, size=(300, 3))
        tree = build_kd_hierarchy(coords, rng.random(300), leaf_mass=3.0)
        probes = rng.integers(-5, 1005, size=(500, 3))
        ids = kd_cell_ids(tree, probes)
        expected = np.array(
            [tree.locate(row).cell_id for row in probes], dtype=np.int64
        )
        np.testing.assert_array_equal(ids, expected)
        assert set(ids.tolist()) <= {
            leaf.cell_id for leaf in kd_leaves(tree)
        }


class TestPartitionCellCodes:
    def test_order_partition(self):
        rng = np.random.default_rng(0)
        part = OrderPartition(rng.choice(10_000, size=60, replace=False))
        keys = rng.integers(0, 10_000, size=400).reshape(-1, 1)
        codes = part.cell_codes(keys)
        expected = [part.cell_of((int(k),)) for k in keys[:, 0]]
        np.testing.assert_array_equal(codes, expected)

    def test_kd_partition(self):
        rng = np.random.default_rng(1)
        guide = rng.integers(0, 500, size=(120, 2))
        part = KDPartition(guide, rng.random(120))
        coords = rng.integers(0, 500, size=(300, 2))
        codes = part.cell_codes(coords)
        expected = [part.cell_of(tuple(row)) for row in coords]
        np.testing.assert_array_equal(codes, expected)

    def test_ancestor_partition(self):
        rng = np.random.default_rng(2)
        h = BitHierarchy(12)
        part = HierarchyAncestorPartition(
            h, rng.choice(h.num_leaves, size=40, replace=False)
        )
        keys = rng.integers(0, h.num_leaves, size=500).reshape(-1, 1)
        codes = part.cell_codes(keys)
        for key, code in zip(keys[:, 0], codes):
            assert part.decode_cell_code(code) == part.cell_of((int(key),))

    def test_disjoint_partition(self):
        rng = np.random.default_rng(3)
        part = DisjointPartition(rng.integers(0, 50, size=30))
        labels = rng.integers(0, 60, size=300)
        codes = part.cell_codes(labels)
        for label, code in zip(labels, codes):
            assert part.decode_cell_code(code) == part.cell_of(int(label))

    def test_disjoint_partition_with_labeler(self):
        part = DisjointPartition([1, 4, 9], labeler=lambda key: key[0] % 16)
        coords = np.arange(64).reshape(-1, 1)
        codes = part.cell_codes(coords)
        for row, code in zip(coords, codes):
            assert part.decode_cell_code(code) == part.cell_of(tuple(row))

    def test_labeler_receives_native_ints(self):
        # The scalar path hands labelers tuples of Python ints (via
        # Dataset.iter_items); the vectorized router must do the same
        # so int-only labelers (bit_length, JSON keys, ...) work on
        # both paths.
        part = DisjointPartition(
            [1, 2, 3], labeler=lambda key: key[0].bit_length()
        )
        codes = part.cell_codes(np.arange(1, 9).reshape(-1, 1))
        assert codes.shape == (8,)


class TestBoundaryCellCount:
    def test_matches_scalar_classification(self):
        domain_sizes = (64, 64)
        box = Box((10, 3), (40, 59))
        for s in (4, 16, 49, 64):
            h = max(1, int(np.floor(s ** 0.5 + 1e-9)))
            grids = [
                np.linspace(0, size, h + 1, dtype=np.int64)
                for size in domain_sizes
            ]
            total = 0
            for i in range(h):
                for j in range(h):
                    lows = (int(grids[0][i]), int(grids[1][j]))
                    highs = (
                        int(grids[0][i + 1]) - 1,
                        int(grids[1][j + 1]) - 1,
                    )
                    inside = all(
                        box.lows[a] <= lows[a] and highs[a] <= box.highs[a]
                        for a in range(2)
                    )
                    outside = any(
                        highs[a] < box.lows[a] or lows[a] > box.highs[a]
                        for a in range(2)
                    )
                    if not inside and not outside:
                        total += 1
            assert boundary_cell_count(domain_sizes, s, box) == total


class TestDatasetNormalization:
    def test_dtypes_and_contiguity(self):
        from repro.structures.order import OrderedDomain

        data = Dataset(
            coords=np.asarray([[1, 2], [3, 4]], dtype=np.int32,
                              order="F"),
            weights=[1, 2],
            domain=ProductDomain([OrderedDomain(10), OrderedDomain(10)]),
        )
        assert data.coords.dtype == np.int64
        assert data.coords.flags["C_CONTIGUOUS"]
        assert data.weights.dtype == np.float64
        assert data.weights.flags["C_CONTIGUOUS"]

    def test_subset_slice_is_zero_copy(self):
        data = Dataset.one_dimensional(
            np.arange(100), np.ones(100), size=100
        )
        shard = data.subset(slice(10, 60))
        assert shard.n == 50
        assert shard.coords.base is not None  # a view, not a copy
        assert shard.coords.flags["C_CONTIGUOUS"]

    def test_subset_matches_fancy_index(self):
        rng = np.random.default_rng(7)
        data = Dataset.one_dimensional(
            rng.integers(0, 50, size=40), rng.random(40), size=50
        )
        rows = np.array([3, 1, 20, 33])
        shard = data.subset(rows)
        np.testing.assert_array_equal(shard.coords, data.coords[rows])
        np.testing.assert_array_equal(shard.weights, data.weights[rows])


class TestContiguousSharding:
    def test_slices_match_index_partition(self):
        rng = np.random.default_rng(9)
        data = Dataset.one_dimensional(
            rng.integers(0, 1000, size=103), rng.random(103), size=1000
        )
        for k in (1, 2, 5, 8, 103):
            shards = shard_dataset(data, k, strategy="contiguous",
                                   drop_empty=False)
            index_sets = shard_indices(data, k, strategy="contiguous")
            assert len(shards) == len(index_sets)
            for shard, rows in zip(shards, index_sets):
                np.testing.assert_array_equal(
                    shard.coords, data.coords[rows]
                )
                np.testing.assert_array_equal(
                    shard.weights, data.weights[rows]
                )


class TestChainKernelInvariants:
    """Deterministic structural invariants of the chain kernels."""

    def _pool(self, seed, n=300, s=25):
        rng = np.random.default_rng(seed)
        w = 1.0 + rng.pareto(1.3, size=n)
        p, _ = ipps_probabilities(w, s)
        return p, np.flatnonzero((p > 0.0) & (p < 1.0))

    @pytest.mark.parametrize("seed", range(10))
    def test_single_chain_settles_everything(self, seed):
        p, frac = self._pool(seed)
        before = p.sum()
        leftover = chain_aggregate(p, frac, np.random.default_rng(seed))
        settled = np.setdiff1d(frac, [] if leftover is None else [leftover])
        values = p[settled]
        assert np.all((values == 0.0) | (values == 1.0))
        assert np.isclose(p.sum(), before, atol=1e-6)
        if leftover is not None:
            assert 0.0 <= p[leftover] <= 1.0

    @pytest.mark.parametrize("seed", range(10))
    def test_segmented_conserves_per_segment_mass(self, seed):
        p, frac = self._pool(seed)
        rng = np.random.default_rng(seed + 100)
        labels = rng.integers(0, 7, size=frac.size)
        order = np.argsort(labels, kind="stable")
        pool = frac[order]
        starts = run_starts(labels[order])
        before = [
            p[seg].sum()
            for seg in np.split(pool, starts[1:])
        ]
        segments = np.split(pool, starts[1:])
        segmented_chain_aggregate(p, pool, starts, rng)
        for mass, seg in zip(before, segments):
            assert np.isclose(p[seg].sum(), mass, atol=1e-6)
            fractional = np.sum((p[seg] > SET_EPS) & (p[seg] < 1 - SET_EPS))
            assert fractional <= 1  # at most the segment leftover

    def test_skips_set_entries_like_aggregate_pool(self):
        p = np.array([0.4, 1.0, 0.0, 0.3, 1.0 - 1e-12, 0.2])
        pool = np.arange(6)
        rng = np.random.default_rng(0)
        leftover = chain_aggregate(p, pool, rng)
        # Entries 1, 2 and 4 were already set and must be untouched.
        assert p[1] == 1.0 and p[2] == 0.0 and p[4] == 1.0 - 1e-12
        assert leftover in (0, 3, 5)

    def test_empty_and_singleton_pools(self):
        p = np.array([0.5, 0.25])
        rng = np.random.default_rng(1)
        assert chain_aggregate(p, np.array([], dtype=np.int64), rng) is None
        assert chain_aggregate(p, np.array([1]), rng) == 1
        assert p[1] == 0.25  # untouched

    def test_run_starts(self):
        np.testing.assert_array_equal(
            run_starts(np.array([2, 2, 3, 3, 3, 9])), [0, 2, 5]
        )
        np.testing.assert_array_equal(run_starts(np.array([])), [])
