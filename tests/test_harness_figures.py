"""Tests for the experiment harness, figure functions and reporting."""

import numpy as np
import pytest

from repro.datagen.queries import uniform_area_queries
from repro.experiments.figures import (
    default_network,
    default_tickets,
    fig2a,
    fig2b,
    fig2c,
    fig3a,
    fig3c,
    fig4a,
)
from repro.experiments.harness import (
    METHODS,
    build_summary,
    evaluate_summary,
    ground_truths,
    run_cell,
    run_grid,
)
from repro.experiments.report import (
    FigureResult,
    render_comparison,
    render_figure,
)


@pytest.fixture(scope="module")
def tiny_setup(network_small=None):
    from repro.datagen.network import NetworkConfig, generate_network_flows

    data = generate_network_flows(
        NetworkConfig(n_pairs=1200, n_sources=400, n_dests=400, bits=16,
                      min_prefix=4, max_prefix=10),
        seed=11,
    )
    rng = np.random.default_rng(0)
    queries = uniform_area_queries(data.domain, 6, 5, max_fraction=0.15,
                                   rng=rng)
    return data, queries


class TestHarness:
    #: Methods restricted to 1-D domains (checked separately below).
    ONE_D_ONLY = {"qdigest-stream"}

    def test_all_methods_buildable(self, tiny_setup):
        data, _ = tiny_setup
        rng = np.random.default_rng(1)
        for method in METHODS:
            if method in self.ONE_D_ONLY:
                continue
            summary, seconds = build_summary(method, data, 60, rng)
            assert seconds >= 0
            assert summary.size > 0

    def test_one_d_methods_buildable(self):
        from repro.core.types import Dataset

        rng = np.random.default_rng(3)
        data = Dataset.one_dimensional(
            rng.integers(0, 1 << 12, size=500), rng.random(500) + 0.1,
            size=1 << 12,
        )
        for method in self.ONE_D_ONLY:
            summary, seconds = build_summary(method, data, 60,
                                             np.random.default_rng(1))
            assert seconds >= 0
            assert summary.size > 0

    def test_unknown_method_raises(self, tiny_setup):
        data, _ = tiny_setup
        with pytest.raises(KeyError):
            build_summary("nope", data, 10, np.random.default_rng(0))

    def test_evaluate_scores(self, tiny_setup):
        data, queries = tiny_setup
        truths = ground_truths(data, queries)
        summary, _ = build_summary("obliv", data, 100,
                                   np.random.default_rng(2))
        scores = evaluate_summary(summary, queries, truths,
                                  data.total_weight)
        assert scores["abs_error"] >= 0
        assert len(scores["per_query_abs"]) == len(queries)

    def test_run_cell(self, tiny_setup):
        data, queries = tiny_setup
        truths = ground_truths(data, queries)
        cell = run_cell("aware", data, 80, queries, truths, seed=3)
        assert cell.method == "aware"
        assert cell.size == 80
        assert cell.build_throughput > 0

    def test_run_grid_shape(self, tiny_setup):
        data, queries = tiny_setup
        results = run_grid(data, [50, 100], queries,
                           ["obliv", "qdigest"], repeats=2)
        assert len(results) == 4
        methods = {r.method for r in results}
        assert methods == {"obliv", "qdigest"}

    def test_sample_errors_shrink_with_size(self, tiny_setup):
        data, queries = tiny_setup
        results = run_grid(data, [30, 500], queries, ["obliv"],
                           repeats=4)
        by_size = {r.size: r.abs_error for r in results}
        assert by_size[500] < by_size[30]


class TestFigureFunctions:
    """Each figure function runs end-to-end at a tiny scale."""

    @pytest.fixture(scope="class")
    def tiny_net(self):
        from repro.datagen.network import NetworkConfig, generate_network_flows

        return generate_network_flows(
            NetworkConfig(n_pairs=1000, n_sources=300, n_dests=300,
                          bits=16, min_prefix=4, max_prefix=10),
            seed=21,
        )

    @pytest.fixture(scope="class")
    def tiny_tickets(self):
        from repro.datagen.tickets import TicketConfig, generate_tickets

        return generate_tickets(TicketConfig(n_combinations=1000), seed=22)

    def test_fig2a(self, tiny_net):
        result = fig2a(tiny_net, sizes=(50, 150), n_queries=5,
                       methods=("aware", "obliv"), repeats=1)
        assert set(result.series) == {"aware", "obliv"}
        assert len(result.series["aware"]) == 2

    def test_fig2b(self, tiny_net):
        result = fig2b(tiny_net, size=120, cell_counts=(60, 20),
                       n_queries=5, methods=("aware", "obliv"), repeats=1)
        assert len(result.series["aware"]) == 2

    def test_fig2c(self, tiny_net):
        result = fig2c(tiny_net, size=120, range_counts=(1, 4),
                       n_queries=5, methods=("obliv",), repeats=1)
        xs = [x for x, _ in result.series["obliv"]]
        assert xs == [1, 4]

    def test_fig3a(self, tiny_net):
        result = fig3a(tiny_net, sizes=(60,), methods=("aware", "obliv"))
        for series in result.series.values():
            assert all(y > 0 for _x, y in series)

    def test_fig3c(self, tiny_net):
        result = fig3c(tiny_net, sizes=(60,), n_rectangles=20,
                       methods=("obliv",))
        assert "exact(full data)" in result.series

    def test_fig4a(self, tiny_tickets):
        result = fig4a(tiny_tickets, sizes=(50, 150), n_cells=30,
                       n_queries=5, methods=("aware", "obliv"), repeats=1)
        assert len(result.series["aware"]) == 2

    def test_default_datasets(self):
        net = default_network(scale=0.05)
        tick = default_tickets(scale=0.05)
        assert net.n > 100 and tick.n > 100


class TestReport:
    def make_result(self):
        r = FigureResult("Fig X", "title", "size", "error")
        r.add_point("a", 10, 0.5)
        r.add_point("a", 20, 0.25)
        r.add_point("b", 10, 1.0)
        r.add_point("b", 20, 0.5)
        return r

    def test_render_contains_all_series(self):
        text = render_figure(self.make_result())
        assert "Fig X" in text
        assert "a" in text and "b" in text
        assert "0.5" in text

    def test_render_handles_missing_points(self):
        r = self.make_result()
        r.add_point("c", 10, 2.0)  # no point at x=20
        text = render_figure(r)
        assert "-" in text

    def test_comparison_ratio(self):
        text = render_comparison(self.make_result(), baseline="b",
                                 target="a")
        assert "2.00x" in text

    def test_comparison_no_overlap(self):
        r = FigureResult("f", "t", "x", "y")
        r.add_point("a", 1, 1.0)
        text = render_comparison(r, baseline="b", target="a")
        assert "no comparable" in text
