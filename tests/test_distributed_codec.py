"""Wire codec round trips: every registry method, bit-exact.

The distributed engine's correctness rests on one property: a summary
that crosses a process/host boundary must come back *bit-exact* -- the
decoded copy answers every query identically and merges identically to
the original.  These tests assert exactly that, per registry method,
plus the error paths (version mismatch, truncated payloads, bad
frames) that a production wire format must reject loudly.
"""

import numpy as np
import pytest

from repro.core.types import Dataset
from repro.core.varopt import StreamVarOpt
from repro.distributed import codec
from repro.engine import registry
from repro.structures.hierarchy import BitHierarchy, ExplicitHierarchy
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain, line_domain
from repro.structures.ranges import Box

SIZE = 150


def dataset_2d(seed, n=1200):
    rng = np.random.default_rng(seed)
    size = 1 << 12
    coords = rng.integers(0, size, size=(n, 2))
    weights = 1.0 + rng.pareto(1.4, size=n)
    domain = ProductDomain([OrderedDomain(size), OrderedDomain(size)])
    return Dataset(coords=coords, weights=weights, domain=domain)


def dataset_1d(seed, n=1200):
    rng = np.random.default_rng(seed)
    size = 1 << 12
    return Dataset.one_dimensional(
        rng.integers(0, size, size=n),
        1.0 + rng.pareto(1.4, size=n),
        size,
    )


def dataset_for(method, seed):
    return dataset_1d(seed) if method == "qdigest-stream" else dataset_2d(seed)


def queries_for(method):
    size = 1 << 12
    if method == "qdigest-stream":
        return [
            Box((0,), (size // 2,)),
            Box((size // 4,), (size - 1,)),
            Box((7,), (7,)),
        ]
    return [
        Box((0, 0), (size // 2, size // 2)),
        Box((size // 4, 0), (size - 1, size // 3)),
        Box((5, 5), (5, 5)),
    ]


def assert_state_equal(a, b, path="state"):
    """Recursive bit-exact equality of two codec state values."""
    assert type(a) is type(b), f"{path}: {type(a)} vs {type(b)}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), path
        for key in a:
            assert_state_equal(a[key], b[key], f"{path}[{key!r}]")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for index, (x, y) in enumerate(zip(a, b)):
            assert_state_equal(x, y, f"{path}[{index}]")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype, path
        np.testing.assert_array_equal(a, b, err_msg=path)
    else:
        assert a == b, f"{path}: {a!r} vs {b!r}"


class TestValueCodec:
    def test_primitives_round_trip(self):
        values = [
            None, True, False, 0, -1, 2**62, -(2**62),
            2**100, -(2**100),  # beyond int64: big-int path
            3.14159, float("inf"), "héllo", b"\x00\xff", (1, "a"),
            [1, [2, [3]]], {"k": (1, 2), (3, 4): "v", 5: None},
        ]
        for value in values:
            assert codec.decode_value(codec.encode_value(value)) == value

    def test_nan_round_trip(self):
        decoded = codec.decode_value(codec.encode_value(float("nan")))
        assert np.isnan(decoded)

    def test_arrays_round_trip_dtype_and_shape(self):
        for arr in [
            np.arange(12, dtype=np.int64).reshape(3, 4),
            np.asarray([1.5, -2.5]),
            np.asarray([], dtype=np.uint64),
            np.zeros((2, 0, 3), dtype=np.float32),
        ]:
            back = codec.decode_value(codec.encode_value(arr))
            assert back.dtype == arr.dtype and back.shape == arr.shape
            np.testing.assert_array_equal(back, arr)

    def test_decoded_arrays_are_writable(self):
        back = codec.decode_value(codec.encode_value(np.arange(3)))
        back[0] = 7  # frombuffer views would raise here

    def test_unencodable_rejected(self):
        with pytest.raises(codec.CodecError, match="cannot encode"):
            codec.encode_value(object())

    def test_trailing_bytes_rejected(self):
        with pytest.raises(codec.CodecError, match="trailing"):
            codec.decode_value(codec.encode_value(1) + b"x")

    def test_truncated_value_rejected(self):
        blob = codec.encode_value({"a": np.arange(100)})
        with pytest.raises(codec.TruncatedPayloadError):
            codec.decode_value(blob[:-5])


class TestSummaryFrames:
    @pytest.mark.parametrize("method", sorted(registry.available()))
    def test_round_trip_preserves_queries_and_merge(self, method):
        """decode(encode(x)) answers and merges exactly like x.

        Merge-of-decoded must equal merge-of-originals bit-exactly:
        same state, same query answers.  Randomized merges (samples)
        run from identically seeded generators on both sides.
        """
        data_a = dataset_for(method, seed=1)
        data_b = dataset_for(method, seed=2)
        rng = np.random.default_rng(0)
        summary_a = registry.build(method, data_a, SIZE, rng)
        summary_b = registry.build(method, data_b, SIZE, rng)
        queries = queries_for(method)

        decoded_a = codec.from_bytes(codec.to_bytes(summary_a))
        decoded_b = codec.from_bytes(codec.to_bytes(summary_b))
        assert type(decoded_a) is type(summary_a)
        assert_state_equal(summary_a.to_state(), decoded_a.to_state())
        assert summary_a.query_many(queries) == decoded_a.query_many(queries)

        if not getattr(summary_a, "mergeable", False):
            return
        kwargs = {}
        if hasattr(summary_a, "downsample"):  # SampleSummary merge
            kwargs = {
                "s": SIZE,
                "rng": np.random.default_rng(99),
            }
            merged_original = summary_a.merge(summary_b, **kwargs)
            kwargs["rng"] = np.random.default_rng(99)
            merged_decoded = decoded_a.merge(decoded_b, **kwargs)
        else:
            merged_original = summary_a.merge(summary_b)
            merged_decoded = decoded_a.merge(decoded_b)
        assert_state_equal(
            merged_original.to_state(), merged_decoded.to_state()
        )
        assert merged_original.query_many(queries) == \
            merged_decoded.query_many(queries)

    def test_stream_varopt_round_trip_continues_identically(self):
        """A migrated live reservoir replays the future identically."""
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 1000, size=2000).reshape(-1, 1)
        weights = 1.0 + rng.pareto(1.3, size=2000)
        original = StreamVarOpt(50, rng=7)
        original.update(keys[:1200], weights[:1200])
        migrated = codec.from_bytes(codec.to_bytes(original))
        assert isinstance(migrated, StreamVarOpt)
        original.update(keys[1200:], weights[1200:])
        migrated.update(keys[1200:], weights[1200:])
        a, b = original.summary(), migrated.summary()
        np.testing.assert_array_equal(a.coords, b.coords)
        np.testing.assert_array_equal(a.weights, b.weights)
        assert a.tau == b.tau

    def test_stream_varopt_round_trip_other_bit_generator(self):
        """Reservoirs on non-default generators migrate too."""
        original = StreamVarOpt(
            20, rng=np.random.Generator(np.random.MT19937(5))
        )
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 100, size=200).reshape(-1, 1)
        weights = 1.0 + rng.pareto(1.3, size=200)
        original.update(keys[:150], weights[:150])
        migrated = codec.from_bytes(codec.to_bytes(original))
        original.update(keys[150:], weights[150:])
        migrated.update(keys[150:], weights[150:])
        np.testing.assert_array_equal(
            original.summary().coords, migrated.summary().coords
        )

    def test_version_mismatch_rejected(self):
        frame = bytearray(codec.to_bytes(
            registry.build("obliv", dataset_2d(0), 50,
                           np.random.default_rng(0))
        ))
        frame[4] = codec.WIRE_VERSION + 1  # the version byte
        with pytest.raises(codec.VersionMismatchError, match="version"):
            codec.from_bytes(bytes(frame))

    def test_truncated_payload_rejected(self):
        frame = codec.to_bytes(
            registry.build("sketch", dataset_2d(0), 200,
                           np.random.default_rng(0))
        )
        for cut in (len(frame) // 2, len(frame) - 3, 6):
            with pytest.raises(codec.TruncatedPayloadError):
                codec.from_bytes(frame[:cut])

    def test_bad_magic_rejected(self):
        with pytest.raises(codec.CodecError, match="magic"):
            codec.from_bytes(b"XXXX" + b"\x01" + b"\x00")

    def test_unknown_tag_rejected(self):
        frame = b"".join([
            codec.MAGIC,
            bytes([codec.WIRE_VERSION]),
            bytes([4]), b"nope",
            codec.encode_value({}),
        ])
        with pytest.raises(KeyError, match="nope"):
            codec.from_bytes(frame)

    def test_unregistered_summary_rejected(self):
        class Mystery:
            def to_state(self):
                return {}

            @classmethod
            def from_state(cls, state):
                return cls()

        with pytest.raises(KeyError, match="no codec registered"):
            codec.to_bytes(Mystery())


class TestCompressedCodecs:
    """The v2 compressed array codecs: bit-exact, compact, compatible."""

    @pytest.mark.parametrize("method", sorted(registry.available()))
    def test_per_method_round_trip_both_wire_versions(self, method):
        """Every summary survives both the compressed and raw framing."""
        summary = registry.build(
            method, dataset_for(method, seed=1), SIZE,
            np.random.default_rng(0),
        )
        for compress in (True, False):
            frame = codec.to_bytes(summary, compress=compress)
            expected = (
                codec.WIRE_VERSION if compress else codec.RAW_WIRE_VERSION
            )
            assert frame[4] == expected  # the version byte
            decoded = codec.from_bytes(frame)
            assert_state_equal(summary.to_state(), decoded.to_state())

    def test_old_version_raw_frames_still_decode(self):
        """``compress=False`` emits v1 frames -- the pre-codec format."""
        message = {"type": "build", "coords": np.arange(4000).reshape(-1, 2)}
        frame = codec.encode_message(message, compress=False)
        assert frame[4] == codec.RAW_WIRE_VERSION == 1
        back = codec.decode_message(frame)
        np.testing.assert_array_equal(back["coords"], message["coords"])

    def test_sorted_int64_compresses_3x(self):
        # Dataset-shaped keys: sorted int64 over a 2^20 domain, so
        # deltas are small -- the case the delta+varint codec targets.
        rng = np.random.default_rng(0)
        arr = np.sort(rng.integers(0, 1 << 20, size=20_000))
        raw = codec.encode_value(arr, compress=False)
        packed = codec.encode_value(arr)
        assert len(raw) >= 3 * len(packed)
        np.testing.assert_array_equal(codec.decode_value(packed), arr)

    def test_each_codec_bit_exact(self):
        """Direct array codec round trips, including extreme values."""
        rng = np.random.default_rng(1)
        info = np.iinfo(np.int64)
        cases = [
            (codec.CODEC_DELTA_VARINT,
             np.array([info.min, -1, 0, 1, info.max] * 40)),
            (codec.CODEC_DELTA_VARINT,
             np.sort(rng.integers(-(1 << 62), 1 << 62, size=4000))),
            (codec.CODEC_DELTA_VARINT,
             rng.integers(0, 1 << 60, size=4000).astype(np.uint64)),
            (codec.CODEC_DELTA_VARINT,
             rng.integers(0, 4096, size=(500, 2))),
            (codec.CODEC_DELTA_VARINT, np.empty(0, dtype=np.int64)),
            (codec.CODEC_SHUFFLE_ZLIB, rng.pareto(1.4, size=4000)),
            (codec.CODEC_SHUFFLE_ZLIB,
             rng.normal(size=300).astype(np.float32)),
        ]
        for codec_id, arr in cases:
            payload = codec.encode_array(arr, codec_id)
            back = codec.decode_array(payload, arr.dtype, arr.shape, codec_id)
            assert back.dtype == arr.dtype and back.shape == arr.shape
            np.testing.assert_array_equal(back, arr)

    def test_truncated_varint_payload_rejected(self):
        arr = np.sort(np.random.default_rng(2).integers(0, 1 << 40, 1000))
        payload = codec.encode_array(arr, codec.CODEC_DELTA_VARINT)
        with pytest.raises(codec.CodecError):
            codec.decode_array(
                payload[:-3], arr.dtype, arr.shape, codec.CODEC_DELTA_VARINT
            )

    def test_varint_count_mismatch_rejected(self):
        arr = np.arange(1000, dtype=np.int64)
        payload = codec.encode_array(arr, codec.CODEC_DELTA_VARINT)
        with pytest.raises(codec.CodecError):
            codec.decode_array(
                payload, arr.dtype, (999,), codec.CODEC_DELTA_VARINT
            )

    def test_corrupt_zlib_payload_rejected(self):
        arr = np.random.default_rng(3).pareto(1.4, size=2000)
        payload = bytearray(codec.encode_array(arr, codec.CODEC_SHUFFLE_ZLIB))
        payload[len(payload) // 2] ^= 0xFF
        with pytest.raises(codec.CodecError):
            codec.decode_array(
                bytes(payload), arr.dtype, arr.shape, codec.CODEC_SHUFFLE_ZLIB
            )

    def test_truncated_compressed_frame_rejected(self):
        blob = codec.encode_value(
            {"a": np.sort(np.random.default_rng(4).integers(0, 1 << 40,
                                                            5000))}
        )
        for cut in (len(blob) // 2, len(blob) - 4):
            with pytest.raises(codec.CodecError):
                codec.decode_value(blob[:cut])

    def test_unknown_codec_id_rejected(self):
        with pytest.raises(codec.CodecError):
            codec.decode_array(b"", np.dtype(np.int64), (0,), 99)

    def test_zero_copy_raw_views(self):
        """``copy=False`` hands back read-only views into the frame."""
        arr = np.arange(50, dtype=np.int64)
        frame = codec.encode_value(arr, compress=False)
        view = codec.decode_value(frame, copy=False)
        assert not view.flags.writeable
        np.testing.assert_array_equal(view, arr)
        # Default decode stays an independent writable copy.
        writable = codec.decode_value(frame)
        assert writable.flags.writeable
        writable[0] = -1
        np.testing.assert_array_equal(codec.decode_value(frame), arr)

    def test_zero_copy_decoded_coded_arrays_stay_writable(self):
        """Compressed arrays decode to fresh buffers -- always writable."""
        arr = np.sort(np.random.default_rng(5).integers(0, 1 << 30, 5000))
        view = codec.decode_value(codec.encode_value(arr), copy=False)
        assert view.flags.writeable
        np.testing.assert_array_equal(view, arr)

    def test_small_arrays_stay_raw(self):
        """Below the coding floor the raw tag wins (no per-array cost)."""
        codec_id, _payload = codec.choose_codec(np.arange(4, dtype=np.int64))
        assert codec_id == codec.CODEC_RAW


class TestMessageFrames:
    def test_round_trip(self):
        message = {
            "type": "build",
            "coords": np.arange(6).reshape(3, 2),
            "weights": np.ones(3),
            "nested": {"a": (1, 2)},
        }
        back = codec.decode_message(codec.encode_message(message))
        assert back["type"] == "build"
        np.testing.assert_array_equal(back["coords"], message["coords"])

    def test_typeless_message_rejected(self):
        with pytest.raises(codec.CodecError, match="'type'"):
            codec.encode_message({"no": "type"})

    def test_version_mismatch_rejected(self):
        frame = bytearray(codec.encode_message({"type": "ping"}))
        frame[4] = codec.WIRE_VERSION + 9
        with pytest.raises(codec.VersionMismatchError):
            codec.decode_message(bytes(frame))


class TestDomainSpecs:
    def test_round_trip_all_axis_kinds(self):
        domain = ProductDomain([
            OrderedDomain(4096),
            BitHierarchy(16),
            ExplicitHierarchy([2, 4, 8]),
        ])
        decoded = codec.decode_domain(codec.encode_domain(domain))
        assert decoded.dims == 3
        assert decoded.sizes == domain.sizes
        assert isinstance(decoded.axes[1], BitHierarchy)
        assert decoded.axes[1].bits == 16
        assert decoded.axes[2].branchings == (2, 4, 8)

    def test_line_domain(self):
        decoded = codec.decode_domain(codec.encode_domain(line_domain(99)))
        assert decoded.sizes == (99,)
