"""Pane-aligned micro-batch splitting: item-granular window edges."""

import numpy as np
import pytest

from repro.stream import MicroBatch, StreamEngine, sliding, tumbling
from repro.structures.product import line_domain
from repro.structures.ranges import Box

DOMAIN = line_domain(1024)
WHOLE = Box((0,), (1023,))


def stamped_batch(rng, n, t_lo, t_hi):
    keys = rng.integers(0, 1024, size=n).reshape(-1, 1)
    weights = 1.0 + rng.random(n)
    stamps = np.sort(rng.uniform(t_lo, t_hi, size=n))
    return MicroBatch(keys, weights, timestamps=stamps)


class TestMicroBatchTimestamps:
    def test_timestamp_defaults_to_last_stamp(self):
        batch = MicroBatch([[1], [2]], [1.0, 1.0], timestamps=[3.0, 9.0])
        assert batch.timestamp == 9.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="matching length"):
            MicroBatch([[1], [2]], [1.0, 1.0], timestamps=[1.0])

    def test_decreasing_stamps_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            MicroBatch([[1], [2]], [1.0, 1.0], timestamps=[5.0, 3.0])


class TestSplitting:
    def test_straddling_batch_equals_pane_aligned_batches(self):
        """Splitting reproduces a pane-aligned source exactly.

        The same items with the same per-pane routing hit the same
        per-pane summaries with the same derived seeds, so the split
        engine and the reference engine are *identical*, not just
        statistically close -- for the deterministic exact store and
        the seeded reservoir alike.
        """
        rng = np.random.default_rng(0)
        batch = stamped_batch(rng, 200, t_lo=0.0, t_hi=39.0)  # 4 panes
        split = StreamEngine(
            DOMAIN, ["exact", "obliv"], 50,
            window=sliding(20.0, 10.0), seed=3,
        )
        split.process(batch)
        aligned = StreamEngine(
            DOMAIN, ["exact", "obliv"], 50,
            window=sliding(20.0, 10.0), seed=3,
        )
        pane_of = np.floor_divide(batch.timestamps, 10.0)
        for pane in np.unique(pane_of):
            mask = pane_of == pane
            aligned.process(MicroBatch(
                batch.coords[mask],
                batch.weights[mask],
                timestamps=batch.timestamps[mask],
            ))
        assert split.query_now(WHOLE) == aligned.query_now(WHOLE)
        assert split.items_seen == aligned.items_seen == 200

    def test_window_edges_become_item_granular(self):
        """Items beyond a tumbling edge stop leaking into the window."""
        engine = StreamEngine(
            DOMAIN, "exact", 50, window=tumbling(10.0), seed=0
        )
        stamps = np.asarray([8.0, 9.0, 11.0, 12.0])
        engine.process(MicroBatch(
            [[1], [2], [3], [4]], [1.0, 1.0, 1.0, 1.0],
            timestamps=stamps,
        ))
        # Whole-batch assignment would put all 4 items at t=12; the
        # split keeps the first two in the completed [0, 10) window.
        assert engine.query_now(WHOLE)["exact"] == pytest.approx(2.0)
        last = engine.last_window()
        assert last is not None
        assert last["exact"].query(WHOLE) == pytest.approx(2.0)

    def test_many_panes_in_one_batch(self):
        engine = StreamEngine(
            DOMAIN, "exact", 50, window=tumbling(1.0), seed=0
        )
        stamps = np.arange(10, dtype=float) + 0.5  # one item per pane
        engine.process(MicroBatch(
            np.arange(10).reshape(-1, 1), np.ones(10), timestamps=stamps
        ))
        assert engine.query_now(WHOLE)["exact"] == pytest.approx(1.0)
        assert engine.batches_seen == 1
        assert engine.items_seen == 10

    def test_landmark_mode_unaffected(self):
        engine = StreamEngine(DOMAIN, "exact", 50, seed=0)
        engine.process(MicroBatch(
            [[1], [2]], [1.0, 2.0], timestamps=[0.5, 99.5]
        ))
        assert engine.query_now(WHOLE)["exact"] == pytest.approx(3.0)

    def test_out_of_order_stamped_batch_rejected(self):
        engine = StreamEngine(
            DOMAIN, "exact", 50, window=tumbling(10.0), seed=0
        )
        engine.process(MicroBatch([[1]], [1.0], timestamps=[20.0]))
        with pytest.raises(ValueError, match="non-decreasing"):
            engine.process(MicroBatch([[2]], [1.0], timestamps=[5.0]))

    def test_batch_level_stamp_still_assigns_whole(self):
        """Without per-item stamps the pre-split behavior is intact."""
        engine = StreamEngine(
            DOMAIN, "exact", 50, window=tumbling(10.0), seed=0
        )
        engine.process(MicroBatch(
            [[1], [2]], [1.0, 1.0], timestamp=12.0
        ))
        assert engine.query_now(WHOLE)["exact"] == pytest.approx(2.0)
        # Both items landed in pane 1 wholesale; pane 0 completed empty.
        assert engine.last_window()["exact"].size == 0
