"""Tests for the q-digest, Count-Sketch, and exact summaries."""

import numpy as np
import pytest

from repro.core.types import Dataset
from repro.structures.hierarchy import BitHierarchy
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box, MultiRangeQuery, interval
from repro.summaries.exact import ExactSummary
from repro.summaries.qdigest import QDigestSummary
from repro.summaries.sketch import CountSketch, DyadicSketchSummary


def dataset_2d(seed=0, n=150, bits=8):
    rng = np.random.default_rng(seed)
    domain = ProductDomain([BitHierarchy(bits), BitHierarchy(bits)])
    coords = rng.integers(0, 1 << bits, size=(n, 2))
    weights = 1.0 + rng.pareto(1.1, size=n)
    return Dataset(coords=coords, weights=weights, domain=domain).aggregate_duplicates()


class TestQDigest:
    def test_size_within_budget(self):
        data = dataset_2d()
        qd = QDigestSummary(data, 40)
        assert qd.size <= 40

    def test_total_weight_exact(self):
        data = dataset_2d()
        qd = QDigestSummary(data, 40)
        assert qd.query(data.domain.full_box()) == pytest.approx(
            data.total_weight
        )

    def test_budget_one_is_single_cell(self):
        data = dataset_2d()
        qd = QDigestSummary(data, 1)
        assert qd.size == 1

    def test_error_decreases_with_budget(self):
        data = dataset_2d(seed=5, n=300)
        exact = ExactSummary(data)
        boxes = [Box((0, 0), (127, 127)), Box((64, 64), (255, 255))]
        errors = []
        for s in (4, 64, 100_000):
            qd = QDigestSummary(data, s)
            errors.append(
                sum(abs(qd.query(b) - exact.query(b)) for b in boxes)
            )
        assert errors[2] <= errors[0] + 1e-9

    def test_large_budget_exact_on_dyadic_boxes(self):
        # With enough nodes every distinct point gets its own cell, so
        # any box is answered exactly (up to single-point cells).
        data = dataset_2d(seed=2, n=60)
        qd = QDigestSummary(data, 100_000)
        exact = ExactSummary(data)
        box = Box((0, 0), (200, 100))
        assert qd.query(box) == pytest.approx(exact.query(box), rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            QDigestSummary(dataset_2d(), 0)

    def test_deterministic(self):
        data = dataset_2d(seed=7)
        a = QDigestSummary(data, 30)
        b = QDigestSummary(data, 30)
        box = Box((10, 10), (99, 99))
        assert a.query(box) == b.query(box)

    def test_partial_mode_validation(self):
        with pytest.raises(ValueError):
            QDigestSummary(dataset_2d(), 10, partial="bogus")

    def test_query_bounds_contain_truth(self):
        data = dataset_2d(seed=9, n=200)
        qd = QDigestSummary(data, 25)
        exact = ExactSummary(data)
        for box in [Box((0, 0), (100, 100)), Box((50, 20), (250, 200))]:
            lower, upper = qd.query_bounds(box)
            truth = exact.query(box)
            assert lower - 1e-9 <= truth <= upper + 1e-9

    def test_half_estimate_is_midpoint_of_bounds(self):
        data = dataset_2d(seed=9, n=200)
        qd = QDigestSummary(data, 25, partial="half")
        box = Box((7, 3), (210, 180))
        lower, upper = qd.query_bounds(box)
        assert qd.query(box) == pytest.approx((lower + upper) / 2)

    def test_lower_mode_matches_lower_bound(self):
        data = dataset_2d(seed=9, n=200)
        qd = QDigestSummary(data, 25, partial="lower")
        box = Box((7, 3), (210, 180))
        assert qd.query(box) == pytest.approx(qd.query_bounds(box)[0])

    def test_uniform_mode_between_bounds(self):
        data = dataset_2d(seed=9, n=200)
        qd = QDigestSummary(data, 25, partial="uniform")
        box = Box((7, 3), (210, 180))
        lower, upper = qd.query_bounds(box)
        assert lower - 1e-9 <= qd.query(box) <= upper + 1e-9


class TestCountSketch:
    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            CountSketch(0, 3, rng)
        with pytest.raises(ValueError):
            CountSketch(10, 0, rng)

    def test_exactish_for_few_keys_wide_sketch(self):
        rng = np.random.default_rng(1)
        sk = CountSketch(width=4096, depth=5, rng=rng)
        keys = np.arange(10, dtype=np.uint64)
        values = np.arange(1.0, 11.0)
        sk.update_many(keys, values)
        est = sk.estimate_many(keys)
        np.testing.assert_allclose(est, values, atol=1e-9)

    def test_heavy_hitter_recovered_in_noise(self):
        rng = np.random.default_rng(2)
        sk = CountSketch(width=512, depth=5, rng=rng)
        keys = rng.integers(0, 2**40, size=5000).astype(np.uint64)
        values = np.ones(5000)
        sk.update_many(keys, values)
        sk.update_many(np.array([123456789], dtype=np.uint64), np.array([500.0]))
        est = sk.estimate(123456789)
        assert est == pytest.approx(501.0, abs=60)

    def test_counters_property(self):
        sk = CountSketch(16, 3, np.random.default_rng(0))
        assert sk.counters == 48

    def test_unbiased_single_key(self):
        estimates = []
        for t in range(300):
            rng = np.random.default_rng(t)
            sk = CountSketch(width=8, depth=1, rng=rng)
            keys = np.arange(20, dtype=np.uint64)
            sk.update_many(keys, np.ones(20))
            estimates.append(sk.estimate(0))
        assert np.mean(estimates) == pytest.approx(1.0, abs=0.5)


class TestDyadicSketch:
    def test_size_reflects_counters(self):
        data = dataset_2d()
        sk = DyadicSketchSummary(data, 50_000, rng=np.random.default_rng(0))
        assert sk.size >= (8 + 1) * (8 + 1) * 3  # at least width 1 each

    def test_accurate_when_budget_huge(self):
        data = dataset_2d(seed=3, n=40, bits=5)
        sk = DyadicSketchSummary(
            data, 3_000_000, rng=np.random.default_rng(1)
        )
        exact = ExactSummary(data)
        for box in [Box((0, 0), (31, 31)), Box((3, 7), (20, 25))]:
            assert sk.query(box) == pytest.approx(exact.query(box), rel=0.05, abs=2.0)

    def test_1d_supported(self):
        data = Dataset.one_dimensional([1, 5, 9], [1.0, 2.0, 3.0], size=16)
        sk = DyadicSketchSummary(data, 5000, rng=np.random.default_rng(0))
        assert sk.query(interval(0, 15)) == pytest.approx(6.0, abs=1.0)

    def test_validation(self):
        data = dataset_2d()
        with pytest.raises(ValueError):
            DyadicSketchSummary(data, 0)

    def test_rejects_3d(self):
        domain = ProductDomain([BitHierarchy(2)] * 3)
        data = Dataset(
            coords=np.array([[0, 0, 0]]),
            weights=np.array([1.0]),
            domain=domain,
        )
        with pytest.raises(ValueError):
            DyadicSketchSummary(data, 10)


class TestExact:
    def test_query_matches_scan(self):
        data = dataset_2d(seed=4)
        exact = ExactSummary(data)
        box = Box((0, 0), (100, 200))
        mask = box.contains(data.coords)
        assert exact.query(box) == pytest.approx(data.weights[mask].sum())

    def test_query_multi_single_scan(self):
        data = dataset_2d(seed=4)
        exact = ExactSummary(data)
        q = MultiRangeQuery(
            [Box((0, 0), (50, 50)), Box((100, 100), (150, 150))]
        )
        assert exact.query_multi(q) == pytest.approx(
            exact.query(q.boxes[0]) + exact.query(q.boxes[1])
        )

    def test_size_is_data_size(self):
        data = dataset_2d(seed=4)
        assert ExactSummary(data).size == data.n
