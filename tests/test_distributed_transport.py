"""The shared-memory transport and the wire-stats accounting.

The shared-memory transport must be indistinguishable from the plain
pipe transport above the byte layer -- identical build results, same
worker-death reporting -- while moving large request payloads through
coordinator-owned segments whose lifecycle (allocate, reuse, reclaim
on reply, unlink at stop) these tests pin down.
"""

import glob

import numpy as np
import pytest

from repro.core.types import Dataset
from repro.distributed import (
    Coordinator,
    InProcessTransport,
    SharedMemoryTransport,
    distributed_build,
)
from repro.distributed import codec
from repro.distributed.transport import (
    SHM_DESC_MAGIC,
    pack_shm_descriptor,
    unpack_shm_descriptor,
)
from repro.engine.builder import build_sharded
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box

SIZE = 200


def dataset_2d(seed=42, n=3000):
    rng = np.random.default_rng(seed)
    size = 1 << 12
    coords = rng.integers(0, size, size=(n, 2))
    weights = 1.0 + rng.pareto(1.4, size=n)
    domain = ProductDomain([OrderedDomain(size), OrderedDomain(size)])
    return Dataset(coords=coords, weights=weights, domain=domain)


def queries():
    size = 1 << 12
    return [Box((lo, 0), (lo + size // 3, size // 2))
            for lo in range(0, size // 2, size // 8)]


def start_shm(num_workers, **kwargs):
    transport = SharedMemoryTransport(**kwargs)
    try:
        transport.start(num_workers)
    except (OSError, PermissionError) as exc:  # pragma: no cover
        pytest.skip(f"process spawning unavailable: {exc}")
    return transport


def drain(transport, want, timeout=30.0):
    """Collect ``want`` replies or fail loudly."""
    replies = []
    import time

    deadline = time.monotonic() + timeout
    while len(replies) < want and time.monotonic() < deadline:
        replies.extend(transport.poll(0.2))
    assert len(replies) == want, f"got {len(replies)}/{want} replies"
    return replies


class TestDescriptors:
    def test_round_trip(self):
        name, length = "psm_abc123", 123456
        frame = pack_shm_descriptor(name, length)
        assert frame.startswith(SHM_DESC_MAGIC)
        assert unpack_shm_descriptor(frame) == (name, length)

    def test_inline_frames_pass_through(self):
        assert unpack_shm_descriptor(codec.encode_message(
            {"type": "ping"}
        )) is None


class TestWireStats:
    def test_inprocess_counts_both_directions(self):
        transport = InProcessTransport()
        transport.start(1)
        frame = codec.encode_message({"type": "ping"})
        transport.send(0, frame)
        (worker_id, reply), = transport.poll(0)
        assert worker_id == 0
        stats = transport.stats.snapshot()
        assert stats["frames_sent"] == 1
        assert stats["bytes_sent"] == len(frame)
        assert stats["frames_received"] == 1
        assert stats["bytes_received"] == len(reply)
        assert stats["shm_frames"] == stats["shm_bytes"] == 0

    def test_build_records_wire_accounting(self):
        result = distributed_build(
            "obliv", dataset_2d(), SIZE, np.random.default_rng(0),
            num_workers=2, transport="inprocess",
        )
        assert result.frames_sent > 0
        assert result.bytes_on_wire > 0
        assert result.shm_bytes == 0


class TestSharedMemoryTransport:
    def test_build_parity_with_local(self):
        data = dataset_2d()
        # Low threshold so the ~20 KiB shard frames go through shm.
        transport = SharedMemoryTransport(min_shm_bytes=1 << 12)
        try:
            result = distributed_build(
                "obliv", data, SIZE, np.random.default_rng(0),
                num_workers=4, transport=transport,
            )
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"process spawning unavailable: {exc}")
        local = build_sharded(
            "obliv", data, SIZE, np.random.default_rng(0), num_shards=4
        )
        for box in queries():
            assert result.summary.query(box) == pytest.approx(
                local.summary.query(box), rel=1e-12
            )
        # Large shard frames went out-of-band: descriptors on the
        # pipe, payloads through segments.
        assert result.shm_bytes > result.bytes_on_wire

    def test_small_and_fire_and_forget_frames_stay_inline(self):
        transport = start_shm(1, min_shm_bytes=1 << 16)
        try:
            transport.send(0, codec.encode_message({"type": "ping"}))
            drain(transport, 1)
            assert transport.stats.shm_frames == 0
            assert transport.stats.frames_sent == 1
        finally:
            transport.stop()

    def test_segment_lifecycle_reuse_and_unlink(self):
        transport = start_shm(1, min_shm_bytes=1 << 10)
        try:
            big = codec.encode_message(
                {"type": "ping", "pad": b"x" * (1 << 12)}
            )
            transport.send(0, big)
            assert transport.stats.shm_frames == 1
            assert transport.stats.shm_bytes == len(big)
            (pool,) = transport._segments.values()
            assert len(pool) == 1 and pool[0].in_use
            name = pool[0].shm.name
            assert glob.glob(f"/dev/shm/*{name.lstrip('/')}*")
            drain(transport, 1)
            assert not pool[0].in_use  # reply landed: reclaimed
            # A second big frame reuses the same segment.
            transport.send(0, big)
            assert len(pool) == 1 and pool[0].in_use
            drain(transport, 1)
        finally:
            transport.stop()
        assert transport._segments == {}
        assert not glob.glob(f"/dev/shm/*{name.lstrip('/')}*")

    def test_worker_crash_reassigned(self):
        """A worker killed mid-fleet reports dead; the build survives."""
        data = dataset_2d(seed=3)
        try:
            coord = Coordinator(SharedMemoryTransport(), num_workers=3)
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"process spawning unavailable: {exc}")
        with coord:
            coord.send(0, {"type": "exit"})
            result = distributed_build(
                "obliv", data, SIZE, np.random.default_rng(0),
                num_workers=3, coordinator=coord,
            )
        assert result.summary.size == SIZE

    def test_dead_worker_send_raises(self):
        transport = start_shm(1)
        try:
            transport.send(
                0, codec.encode_message({"type": "exit"}),
                reply_expected=False,
            )
            import time

            deadline = time.monotonic() + 10
            while transport.alive(0) and time.monotonic() < deadline:
                transport.poll(0.1)
            assert not transport.alive(0)
            from repro.distributed.transport import TransportError

            with pytest.raises(TransportError):
                transport.send(0, codec.encode_message({"type": "ping"}))
        finally:
            transport.stop()

    def test_stop_is_idempotent(self):
        transport = start_shm(1, min_shm_bytes=1 << 10)
        transport.send(
            0, codec.encode_message({"type": "ping", "pad": b"y" * 4096})
        )
        drain(transport, 1)
        transport.stop()
        transport.stop()
        assert transport._segments == {}
