"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.types import Dataset
from repro.datagen.network import NetworkConfig, generate_network_flows
from repro.datagen.tickets import TicketConfig, generate_tickets
from repro.structures.hierarchy import BitHierarchy, ExplicitHierarchy
from repro.structures.product import ProductDomain, line_domain


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(20260612)


@pytest.fixture
def small_weights(rng):
    """A small heavy-tailed weight vector."""
    return 1.0 + rng.pareto(1.3, size=200)


@pytest.fixture
def line_dataset(rng):
    """A 1-D dataset over an ordered domain of size 10_000."""
    n = 300
    keys = np.sort(rng.choice(10_000, size=n, replace=False))
    weights = 1.0 + rng.pareto(1.2, size=n)
    return Dataset.one_dimensional(keys, weights, size=10_000)


@pytest.fixture
def bit_hier():
    """A 12-bit binary hierarchy."""
    return BitHierarchy(12)


@pytest.fixture
def hier_dataset(rng, bit_hier):
    """A 1-D dataset whose keys live in a 12-bit hierarchy."""
    n = 250
    keys = np.sort(rng.choice(bit_hier.num_leaves, size=n, replace=False))
    weights = 1.0 + rng.pareto(1.2, size=n)
    return Dataset(
        coords=keys.reshape(-1, 1),
        weights=weights,
        domain=ProductDomain([bit_hier]),
    )


@pytest.fixture
def grid_dataset(rng):
    """A 2-D dataset over a 1024 x 1024 product of bit hierarchies."""
    n = 400
    domain = ProductDomain([BitHierarchy(10), BitHierarchy(10)])
    coords = rng.integers(0, 1024, size=(n, 2))
    weights = 1.0 + rng.pareto(1.2, size=n)
    dataset = Dataset(coords=coords, weights=weights, domain=domain)
    return dataset.aggregate_duplicates()


@pytest.fixture(scope="session")
def network_small():
    """A small synthetic network-flow dataset (shared across tests)."""
    config = NetworkConfig(
        n_pairs=3000, n_sources=1000, n_dests=900, bits=20,
        min_prefix=4, max_prefix=12,
    )
    return generate_network_flows(config, seed=99)


@pytest.fixture(scope="session")
def tickets_small():
    """A small synthetic ticket dataset (shared across tests)."""
    config = TicketConfig(n_combinations=3000)
    return generate_tickets(config, seed=77)
