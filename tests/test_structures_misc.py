"""Tests for ordered domains, product domains and dyadic decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.dyadic import (
    dyadic_cell_interval,
    dyadic_decompose_box,
    dyadic_decompose_interval,
)
from repro.structures.hierarchy import BitHierarchy
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain, line_domain
from repro.structures.ranges import Box


class TestOrderedDomain:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            OrderedDomain(0)

    def test_contains(self):
        d = OrderedDomain(10)
        assert d.contains(0) and d.contains(9)
        assert not d.contains(-1) and not d.contains(10)

    def test_clip_interval(self):
        d = OrderedDomain(10)
        assert d.clip_interval(-5, 20) == (0, 9)
        assert d.clip_interval(3, 4) == (3, 4)

    def test_validate_keys(self):
        d = OrderedDomain(10)
        d.validate_keys(np.array([0, 9]))
        with pytest.raises(ValueError):
            d.validate_keys(np.array([0, 10]))

    def test_equality(self):
        assert OrderedDomain(5) == OrderedDomain(5)
        assert OrderedDomain(5) != OrderedDomain(6)


class TestProductDomain:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ProductDomain([])

    def test_sizes_and_dims(self):
        d = ProductDomain([OrderedDomain(8), BitHierarchy(3)])
        assert d.dims == 2
        assert d.sizes == (8, 8)

    def test_is_hierarchical(self):
        d = ProductDomain([OrderedDomain(8), BitHierarchy(3)])
        assert not d.is_hierarchical(0)
        assert d.is_hierarchical(1)

    def test_hierarchy_accessor(self):
        h = BitHierarchy(3)
        d = ProductDomain([OrderedDomain(8), h])
        assert d.hierarchy(1) is h
        with pytest.raises(TypeError):
            d.hierarchy(0)

    def test_validate_coords_shape(self):
        d = ProductDomain([OrderedDomain(8), OrderedDomain(8)])
        with pytest.raises(ValueError):
            d.validate_coords(np.zeros((3, 3), dtype=int))

    def test_validate_coords_range(self):
        d = ProductDomain([OrderedDomain(8), OrderedDomain(4)])
        d.validate_coords(np.array([[7, 3]]))
        with pytest.raises(ValueError):
            d.validate_coords(np.array([[7, 4]]))

    def test_full_box(self):
        d = ProductDomain([OrderedDomain(8), OrderedDomain(4)])
        assert d.full_box() == Box((0, 0), (7, 3))

    def test_line_domain(self):
        d = line_domain(100)
        assert d.dims == 1
        assert d.sizes == (100,)


class TestDyadic:
    def test_cell_interval(self):
        assert dyadic_cell_interval(4, 0, 0) == (0, 15)
        assert dyadic_cell_interval(4, 4, 5) == (5, 5)
        assert dyadic_cell_interval(4, 2, 3) == (12, 15)

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            dyadic_decompose_interval(5, 4, 4)

    def test_rejects_out_of_domain(self):
        with pytest.raises(ValueError):
            dyadic_decompose_interval(0, 16, 4)

    def test_full_domain_is_one_cell(self):
        assert dyadic_decompose_interval(0, 15, 4) == [(0, 0)]

    def test_single_point(self):
        assert dyadic_decompose_interval(5, 5, 4) == [(4, 5)]

    def test_cover_is_exact_and_disjoint(self):
        bits = 6
        for lo, hi in [(0, 62), (1, 62), (3, 40), (17, 18), (31, 32)]:
            cells = dyadic_decompose_interval(lo, hi, bits)
            covered = []
            for depth, index in cells:
                c_lo, c_hi = dyadic_cell_interval(bits, depth, index)
                covered.extend(range(c_lo, c_hi + 1))
            assert covered == list(range(lo, hi + 1))

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_cover_property(self, a, b):
        lo, hi = min(a, b), max(a, b)
        cells = dyadic_decompose_interval(lo, hi, 6)
        total = sum(
            dyadic_cell_interval(6, d, i)[1] - dyadic_cell_interval(6, d, i)[0] + 1
            for d, i in cells
        )
        assert total == hi - lo + 1
        assert len(cells) <= 2 * 6

    def test_alignment_of_cells(self):
        cells = dyadic_decompose_interval(3, 40, 6)
        for depth, index in cells:
            lo, _hi = dyadic_cell_interval(6, depth, index)
            assert lo % (1 << (6 - depth)) == 0

    def test_box_decomposition_product(self):
        box = Box((1, 2), (6, 5))
        rects = dyadic_decompose_box(box, (3, 3))
        x_cells = dyadic_decompose_interval(1, 6, 3)
        y_cells = dyadic_decompose_interval(2, 5, 3)
        assert len(rects) == len(x_cells) * len(y_cells)
        volume = 0
        for rect in rects:
            vol = 1
            for axis, (depth, index) in enumerate(rect):
                lo, hi = dyadic_cell_interval(3, depth, index)
                vol *= hi - lo + 1
            volume += vol
        assert volume == box.volume
