"""Tests for the two-pass I/O-efficient pipeline (Section 5)."""

import numpy as np
import pytest

from repro.core.discrepancy import (
    max_hierarchy_discrepancy,
    max_interval_discrepancy,
)
from repro.core.ipps import ipps_probabilities, ipps_threshold
from repro.core.types import Dataset
from repro.structures.hierarchy import BitHierarchy
from repro.structures.product import ProductDomain, line_domain
from repro.twopass.io_aggregate import IOAggregator
from repro.twopass.partitions import (
    DisjointPartition,
    HierarchyAncestorPartition,
    KDPartition,
    OrderPartition,
)
from repro.twopass.two_pass import TwoPassSampler, two_pass_summary


class TestOrderPartition:
    def test_cells_between_guides(self):
        part = OrderPartition([10, 20, 30])
        assert part.cell_of(5) == 0
        assert part.cell_of(10) == 0
        assert part.cell_of(11) == 1
        assert part.cell_of(20) == 1
        assert part.cell_of(25) == 2
        assert part.cell_of(31) == 3
        assert part.num_cells == 4

    def test_accepts_tuple_keys(self):
        part = OrderPartition([10])
        assert part.cell_of((5,)) == 0

    def test_duplicate_guides_deduped(self):
        part = OrderPartition([10, 10, 10])
        assert part.num_cells == 2


class TestKDPartition:
    def test_locates_all_domain_points(self):
        rng = np.random.default_rng(0)
        domain = ProductDomain([BitHierarchy(8), BitHierarchy(8)])
        guide = rng.integers(0, 256, size=(80, 2))
        probs = rng.random(80)
        part = KDPartition(guide, probs, domain=domain)
        probes = rng.integers(0, 256, size=(200, 2))
        ids = {part.cell_of(tuple(p)) for p in probes}
        assert all(isinstance(i, int) for i in ids)

    def test_empty_guide_rejected(self):
        with pytest.raises(ValueError):
            KDPartition(np.empty((0, 2)), np.empty(0))


class TestHierarchyAncestorPartition:
    def test_guide_leaf_is_own_cell(self):
        h = BitHierarchy(6)
        part = HierarchyAncestorPartition(h, [5, 40])
        assert part.cell_of(5) == (6, 5)

    def test_other_keys_map_to_deepest_selected_ancestor(self):
        h = BitHierarchy(6)
        part = HierarchyAncestorPartition(h, [0b000101])
        # Key 0b000100 shares the depth-5 node 0b00010 with the guide.
        assert part.cell_of(0b000100) == (5, 0b00010)
        # A key in the other half of the domain only shares the root.
        assert part.cell_of(0b100000) == (0, 0)

    def test_num_cells_counts_ancestors(self):
        h = BitHierarchy(4)
        part = HierarchyAncestorPartition(h, [3])
        # Root + depths 1..4 of one leaf = 5 nodes.
        assert part.num_cells == 5


class TestDisjointPartition:
    def test_seen_and_gap_cells(self):
        part = DisjointPartition([4, 9])
        assert part.cell_of(4) == ("range", 4)
        assert part.cell_of(9) == ("range", 9)
        assert part.cell_of(5) == ("gap", 1)
        assert part.cell_of(7) == ("gap", 1)
        assert part.cell_of(1) == ("gap", 0)
        assert part.cell_of(100) == ("gap", 2)


class TestIOAggregator:
    def test_heavy_keys_bypass_cells(self):
        agg = IOAggregator(10.0, lambda key: 0, np.random.default_rng(0))
        agg.process((1,), 50.0)
        assert agg.sample == [((1,), 50.0)]
        assert agg.active_count == 0

    def test_single_light_key_becomes_active(self):
        agg = IOAggregator(10.0, lambda key: 0, np.random.default_rng(0))
        agg.process((1,), 5.0)
        assert agg.active_count == 1
        assert agg.sample == []

    def test_aggregation_within_cell(self):
        agg = IOAggregator(10.0, lambda key: 0, np.random.default_rng(0))
        agg.process((1,), 5.0)
        agg.process((2,), 5.0)
        # p = 0.5 + 0.5 = 1: one of the two keys is chosen.
        assert len(agg.sample) == 1
        assert agg.active_count == 0

    def test_mass_conservation(self):
        rng = np.random.default_rng(1)
        agg = IOAggregator(10.0, lambda key: key[0] % 7, rng)
        for i in range(200):
            agg.process((i,), float(rng.random() * 15))
        assert agg.conservation_error() < 1e-6

    def test_zero_weight_ignored(self):
        agg = IOAggregator(10.0, lambda key: 0, np.random.default_rng(0))
        agg.process((1,), 0.0)
        assert agg.active_count == 0 and agg.sample == []

    def test_tau_zero_samples_everything(self):
        agg = IOAggregator(0.0, lambda key: 0, np.random.default_rng(0))
        for i in range(5):
            agg.process((i,), 1.0)
        assert len(agg.sample) == 5

    def test_rejects_negative_tau(self):
        with pytest.raises(ValueError):
            IOAggregator(-1.0, lambda key: 0, np.random.default_rng(0))


class TestTwoPassSampler:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            TwoPassSampler(0, rng)
        with pytest.raises(ValueError):
            TwoPassSampler(5, rng, s_prime_factor=0)
        with pytest.raises(ValueError):
            TwoPassSampler(5, rng, partition="bogus")

    def test_product_sample_size(self, grid_dataset):
        for t in range(5):
            summary = two_pass_summary(
                grid_dataset, 40, np.random.default_rng(t)
            )
            assert abs(summary.size - 40) <= 1

    def test_tau_matches_offline(self, grid_dataset, rng):
        summary = two_pass_summary(grid_dataset, 40, rng)
        assert summary.tau == pytest.approx(
            ipps_threshold(grid_dataset.weights, 40), rel=1e-9
        )

    def test_s_covers_all_keys(self, rng):
        data = Dataset.one_dimensional([1, 5, 9], [1.0, 2.0, 3.0], size=16)
        summary = two_pass_summary(data, 10, rng)
        assert summary.size == 3
        assert summary.tau == 0.0

    @pytest.mark.parametrize("strict_seed", [False, True])
    def test_order_partition_interval_discrepancy(self, strict_seed):
        # 1-D ordered data: the two-pass sample keeps Delta < 2 w.h.p.;
        # we tolerate the rare guide-sample miss (a cell whose mass
        # exceeds one) by checking a high success rate rather than
        # every seed.  Both the batched and the strict-seed scalar
        # pipeline sit near 70% at these sizes; 40 deterministic seeds
        # at a 65% bar keeps the check meaningful without pinning it
        # to one RNG consumption order.
        rng0 = np.random.default_rng(0)
        n = 400
        keys = rng0.choice(100_000, size=n, replace=False)
        weights = 1.0 + rng0.pareto(1.2, size=n)
        data = Dataset.one_dimensional(keys, weights, size=100_000)
        probs, tau = ipps_probabilities(weights, 30)
        ok = 0
        trials = 40
        for t in range(trials):
            summary = two_pass_summary(
                data, 30, np.random.default_rng(t), strict_seed=strict_seed
            )
            sampled = set(map(tuple, summary.coords))
            mask = np.array([(k,) in sampled for k in keys])
            if max_interval_discrepancy(keys, probs, mask) < 2.0 + 1e-9:
                ok += 1
        assert ok >= trials * 0.65

    def test_ancestor_partition_hierarchy_discrepancy(self, rng):
        h = BitHierarchy(12)
        rng0 = np.random.default_rng(5)
        n = 300
        keys = rng0.choice(h.num_leaves, size=n, replace=False)
        weights = 1.0 + rng0.pareto(1.2, size=n)
        data = Dataset(
            coords=keys.reshape(-1, 1),
            weights=weights,
            domain=ProductDomain([h]),
        )
        probs, tau = ipps_probabilities(weights, 25)
        ok = 0
        trials = 15
        for t in range(trials):
            summary = two_pass_summary(
                data, 25, np.random.default_rng(t), partition="ancestor"
            )
            sampled = set(map(tuple, summary.coords))
            mask = np.array([(k,) in sampled for k in keys])
            if max_hierarchy_discrepancy(h, keys, probs, mask) < 1.0 + 1e-9:
                ok += 1
        assert ok >= trials * 0.6

    def test_linearized_partition_works(self, hier_dataset, rng):
        summary = two_pass_summary(
            hier_dataset, 30, rng, partition="linearized"
        )
        assert abs(summary.size - 30) <= 1

    def test_unbiased_total(self, grid_dataset):
        truth = grid_dataset.total_weight
        estimates = [
            two_pass_summary(grid_dataset, 40, np.random.default_rng(t))
            .estimate_total()
            for t in range(400)
        ]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.05)

    def test_heavy_keys_always_sampled(self, rng):
        weights = np.ones(300)
        weights[42] = 500.0
        keys = np.arange(300)
        data = Dataset.one_dimensional(keys, weights, size=1000)
        for t in range(10):
            summary = two_pass_summary(data, 15, np.random.default_rng(t))
            assert (42,) in set(map(tuple, summary.coords))

    def test_guide_factor_configurable(self, grid_dataset, rng):
        summary = two_pass_summary(grid_dataset, 30, rng, s_prime_factor=2)
        assert abs(summary.size - 30) <= 1

    def test_auto_partition_resolution(self, rng):
        sampler = TwoPassSampler(10, rng)
        line = Dataset.one_dimensional([1, 2, 3], [1, 1, 1], size=10)
        assert sampler._resolve_partition_kind(line) == "order"
        h = BitHierarchy(4)
        hier = Dataset(
            coords=np.array([[1], [2]]),
            weights=np.array([1.0, 1.0]),
            domain=ProductDomain([h]),
        )
        assert sampler._resolve_partition_kind(hier) == "ancestor"
