"""Distributed shard builds: parity with the local engine + fault paths.

The headline guarantee: a distributed build over any transport
produces *identical* query answers to the single-process
``build_sharded`` path given the same seed -- per-shard seeds, worker
builders, codec round trip and fold all line up bit-for-bit.  Plus the
coordinator's failure handling: task errors and worker deaths are
retried/reassigned to surviving workers.
"""

import numpy as np
import pytest

from repro.core.types import Dataset
from repro.distributed import (
    Coordinator,
    DistributedError,
    InProcessTransport,
    distributed_build,
)
from repro.distributed.codec import decode_message, encode_message
from repro.distributed.worker import WorkerRuntime
from repro.engine import registry
from repro.engine.builder import build_sharded
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box

SIZE = 200


def dataset_2d(seed=42, n=3000):
    rng = np.random.default_rng(seed)
    size = 1 << 12
    coords = rng.integers(0, size, size=(n, 2))
    weights = 1.0 + rng.pareto(1.4, size=n)
    domain = ProductDomain([OrderedDomain(size), OrderedDomain(size)])
    return Dataset(coords=coords, weights=weights, domain=domain)


def dataset_1d(seed=42, n=3000):
    rng = np.random.default_rng(seed)
    size = 1 << 12
    return Dataset.one_dimensional(
        rng.integers(0, size, size=n),
        1.0 + rng.pareto(1.4, size=n),
        size,
    )


def queries(dims):
    size = 1 << 12
    if dims == 1:
        return [Box((lo,), (lo + size // 3,))
                for lo in range(0, size // 2, size // 8)]
    return [Box((lo, 0), (lo + size // 3, size // 2))
            for lo in range(0, size // 2, size // 8)]


MERGEABLE_METHODS = [
    name for name in sorted(registry.available())
    if registry.is_mergeable(name)
]


class TestParityWithLocalEngine:
    @pytest.mark.parametrize("method", MERGEABLE_METHODS)
    def test_inprocess_matches_build_sharded(self, method):
        data = dataset_1d() if method == "qdigest-stream" else dataset_2d()
        local = build_sharded(
            method, data, SIZE, np.random.default_rng(5),
            num_shards=4, parallel=False,
        )
        dist = distributed_build(
            method, data, SIZE, np.random.default_rng(5),
            num_workers=4, transport="inprocess",
        )
        battery = queries(data.dims)
        assert dist.summary.query_many(battery) == \
            local.summary.query_many(battery)
        assert dist.num_tasks == local.num_shards
        assert dist.transport == "inprocess"

    @pytest.mark.parametrize("method", MERGEABLE_METHODS)
    def test_multiprocessing_4_workers_matches_build_sharded(self, method):
        """The acceptance criterion: 4 workers over real processes."""
        data = dataset_1d() if method == "qdigest-stream" else dataset_2d()
        local = build_sharded(
            method, data, SIZE, np.random.default_rng(5),
            num_shards=4, parallel=False,
        )
        try:
            dist = distributed_build(
                method, data, SIZE, np.random.default_rng(5),
                num_workers=4, transport="multiprocessing",
            )
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"process spawning unavailable: {exc}")
        battery = queries(data.dims)
        assert dist.summary.query_many(battery) == \
            local.summary.query_many(battery)

    def test_tcp_matches_build_sharded(self):
        data = dataset_2d()
        local = build_sharded(
            "obliv", data, SIZE, np.random.default_rng(5),
            num_shards=2, parallel=False,
        )
        try:
            dist = distributed_build(
                "obliv", data, SIZE, np.random.default_rng(5),
                num_workers=2, transport="tcp",
            )
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"sockets unavailable: {exc}")
        battery = queries(2)
        assert dist.summary.query_many(battery) == \
            local.summary.query_many(battery)

    def test_transports_agree_with_each_other(self):
        data = dataset_2d(seed=7)
        answers = []
        for transport in ("inprocess", "multiprocessing"):
            dist = distributed_build(
                "qdigest", data, SIZE, np.random.default_rng(1),
                num_workers=3, transport=transport,
            )
            answers.append(dist.summary.query_many(queries(2)))
        assert answers[0] == answers[1]

    def test_coordinator_reuse_across_builds(self):
        data = dataset_2d(seed=9)
        with Coordinator("inprocess", num_workers=3) as coord:
            first = distributed_build(
                "obliv", data, SIZE, np.random.default_rng(0),
                coordinator=coord,
            )
            second = distributed_build(
                "sketch", data, SIZE, np.random.default_rng(0),
                coordinator=coord,
            )
        assert first.num_workers == second.num_workers == 3

    def test_unknown_method_fails_fast(self):
        with pytest.raises(KeyError, match="unknown method"):
            distributed_build(
                "no-such-method", dataset_2d(), SIZE,
                np.random.default_rng(0), num_workers=2,
            )


class _FlakyRuntime:
    """Worker handler that fails the first ``failures`` build tasks."""

    def __init__(self, failures):
        self._runtime = WorkerRuntime()
        self._failures = failures

    def __call__(self, frame):
        message = decode_message(frame)
        if message.get("type") == "build" and self._failures > 0:
            self._failures -= 1
            return encode_message({
                "type": "result",
                "task_id": message["task_id"],
                "ok": False,
                "error": "injected failure",
            })
        reply, _stop = self._runtime.handle_frame(frame)
        return reply


class _CrashingRuntime:
    """Worker handler that dies (raises) on its first build task."""

    def __init__(self):
        self._runtime = WorkerRuntime()
        self._crashed = False

    def __call__(self, frame):
        message = decode_message(frame)
        if message.get("type") == "build" and not self._crashed:
            self._crashed = True
            raise RuntimeError("simulated worker crash")
        reply, _stop = self._runtime.handle_frame(frame)
        return reply


class TestFaultHandling:
    def test_failed_tasks_are_retried(self):
        """Transient task errors are retried until they succeed."""
        data = dataset_2d(seed=3)
        transport = InProcessTransport(
            handler_factory=lambda worker_id: _FlakyRuntime(
                failures=1 if worker_id == 0 else 0
            )
        )
        coord = Coordinator(transport, num_workers=3, max_retries=2)
        with coord:
            result = distributed_build(
                "obliv", data, SIZE, np.random.default_rng(0),
                coordinator=coord,
            )
        assert coord.retries >= 1
        assert result.retries >= 1
        assert result.summary.size == SIZE

    def test_dead_workers_tasks_reassigned(self):
        """A crashed worker's task moves to a surviving worker."""
        data = dataset_2d(seed=3)

        def factory(worker_id):
            if worker_id == 0:
                return _CrashingRuntime()
            runtime = WorkerRuntime()
            return lambda frame: runtime.handle_frame(frame)[0]

        transport = InProcessTransport(handler_factory=factory)
        coord = Coordinator(transport, num_workers=3, max_retries=2)
        with coord:
            result = distributed_build(
                "obliv", data, SIZE, np.random.default_rng(0),
                num_workers=3, coordinator=coord,
            )
        assert not transport.alive(0)
        assert result.summary.size == SIZE

    def test_persistent_failure_exhausts_retries(self):
        data = dataset_2d(seed=3)
        transport = InProcessTransport(
            handler_factory=lambda worker_id: _FlakyRuntime(failures=10**6)
        )
        coord = Coordinator(transport, num_workers=2, max_retries=2)
        with coord:
            with pytest.raises(DistributedError, match="failed after"):
                distributed_build(
                    "obliv", data, SIZE, np.random.default_rng(0),
                    coordinator=coord,
                )

    def test_protocol_error_replies_fail_fast(self):
        """A worker stuck on 'error' replies exhausts retries loudly,
        instead of hanging the build until the deadline."""
        data = dataset_2d(seed=3)
        transport = InProcessTransport(
            handler_factory=lambda worker_id: lambda frame:
                encode_message({"type": "error",
                                "error": "wire version mismatch"})
        )
        coord = Coordinator(
            transport, num_workers=2, max_retries=1, timeout=30.0
        )
        with coord:
            with pytest.raises(DistributedError,
                               match="wire version mismatch"):
                distributed_build(
                    "obliv", data, SIZE, np.random.default_rng(0),
                    coordinator=coord,
                )

    def test_all_workers_dead_raises(self):
        data = dataset_2d(seed=3)
        transport = InProcessTransport(
            handler_factory=lambda worker_id: _CrashingRuntime()
        )
        coord = Coordinator(transport, num_workers=2, max_retries=5)
        with coord:
            with pytest.raises(DistributedError, match="workers"):
                distributed_build(
                    "obliv", data, SIZE, np.random.default_rng(0),
                    coordinator=coord,
                )

    def test_mp_worker_crash_reassigned(self):
        """A real process killed mid-fleet does not sink the build."""
        data = dataset_2d(seed=3)
        try:
            coord = Coordinator("multiprocessing", num_workers=3)
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"process spawning unavailable: {exc}")
        with coord:
            # Make worker 0 exit abruptly (no reply), then build.
            coord.send(0, {"type": "exit"})
            result = distributed_build(
                "obliv", data, SIZE, np.random.default_rng(0),
                num_workers=3, coordinator=coord,
            )
        assert result.summary.size == SIZE
