"""Vectorized batch query evaluation matches the per-query loop.

Property tests over random boxes: ``Box.contains_many``,
``batch_union_masks`` and ``batch_query_sums`` must agree with the
per-box/per-query reference implementations on every summary type that
overrides ``query_many``.
"""

import numpy as np
import pytest

from repro.core.estimator import SampleSummary
from repro.core.types import Dataset
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain
from repro.structures.ranges import (
    Box,
    MultiRangeQuery,
    batch_query_sums,
    batch_union_masks,
    flatten_queries,
    stack_boxes,
)
from repro.summaries.base import Summary
from repro.summaries.exact import ExactSummary
from repro.summaries.qdigest import QDigestSummary


def random_disjoint_queries(rng, dims, size, n_queries, max_ranges=4):
    """Random multi-range queries with pairwise-disjoint boxes."""
    queries = []
    for _ in range(n_queries):
        boxes = []
        for _ in range(int(rng.integers(1, max_ranges + 1))):
            for _attempt in range(50):
                lows = rng.integers(0, size - 1, size=dims)
                spans = rng.integers(0, size // 4, size=dims)
                highs = np.minimum(lows + spans, size - 1)
                candidate = Box(tuple(int(x) for x in lows),
                                tuple(int(x) for x in highs))
                if not any(candidate.intersects(b) for b in boxes):
                    boxes.append(candidate)
                    break
        queries.append(MultiRangeQuery(boxes))
    return queries


@pytest.fixture(params=[1, 2, 3])
def setup(request):
    dims = request.param
    rng = np.random.default_rng(100 + dims)
    size = 1 << 12
    n = 500
    coords = rng.integers(0, size, size=(n, dims))
    weights = 1.0 + rng.pareto(1.3, size=n)
    domain = ProductDomain([OrderedDomain(size) for _ in range(dims)])
    data = Dataset(coords=coords, weights=weights, domain=domain)
    queries = random_disjoint_queries(rng, dims, size, 60)
    return data, queries, rng


class TestPrimitives:
    def test_contains_many_matches_loop(self, setup):
        data, queries, _ = setup
        boxes = [box for query in queries for box in query.boxes]
        batched = Box.contains_many(data.coords, boxes)
        assert batched.shape == (len(boxes), data.n)
        for i, box in enumerate(boxes):
            np.testing.assert_array_equal(batched[i], box.contains(data.coords))

    def test_contains_many_accepts_stacked_bounds(self, setup):
        data, queries, _ = setup
        boxes = [box for query in queries for box in query.boxes]
        bounds = stack_boxes(boxes)
        np.testing.assert_array_equal(
            Box.contains_many(data.coords, bounds),
            Box.contains_many(data.coords, boxes),
        )

    def test_contains_many_dim_mismatch(self):
        with pytest.raises(ValueError):
            Box.contains_many(np.zeros((4, 2), dtype=np.int64),
                              [Box((0,), (1,))])

    def test_union_masks_match_query_contains(self, setup):
        data, queries, _ = setup
        masks = batch_union_masks(queries, data.coords)
        for i, query in enumerate(queries):
            np.testing.assert_array_equal(masks[i], query.contains(data.coords))

    def test_flatten_queries_counts(self, setup):
        _, queries, _ = setup
        bounds, counts = flatten_queries(queries)
        assert counts.sum() == bounds.shape[0]
        assert all(c == len(q.boxes) for c, q in zip(counts, queries))

    def test_batch_query_sums_matches_masked_sums(self, setup):
        data, queries, _ = setup
        got = batch_query_sums(queries, data.coords, data.weights)
        want = [
            float(data.weights[q.contains(data.coords)].sum())
            for q in queries
        ]
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_batch_query_sums_tiny_chunks(self, setup):
        """Chunk boundaries must not change the answers."""
        data, queries, _ = setup
        full = batch_query_sums(queries, data.coords, data.weights)
        chunked = batch_query_sums(
            queries, data.coords, data.weights, chunk_elems=7
        )
        np.testing.assert_allclose(chunked, full, rtol=1e-10)

    def test_batch_query_sums_empty_inputs(self):
        assert batch_query_sums([], np.zeros((3, 1)), np.ones(3)).size == 0
        out = batch_query_sums(
            [MultiRangeQuery([Box((0,), (5,))])],
            np.empty((0, 1), dtype=np.int64),
            np.empty(0),
        )
        np.testing.assert_array_equal(out, [0.0])

    def test_non_int64_coords_match_loop(self):
        """Float and int32 coords route through dtype-safe kernels."""
        rng = np.random.default_rng(4)
        queries = [
            MultiRangeQuery([Box((5, 5), (40, 60))]),
            MultiRangeQuery([Box((0, 0), (99, 99))]),
        ]
        weights = rng.random(200)
        for dtype in (np.float64, np.int32):
            coords = rng.integers(0, 100, size=(200, 2)).astype(dtype)
            got = batch_query_sums(queries, coords, weights)
            want = [float(weights[q.contains(coords)].sum()) for q in queries]
            np.testing.assert_allclose(got, want, rtol=1e-12)

    def test_dense_fallback_matches(self):
        """Batteries of near-full-domain boxes hit the dense kernel."""
        rng = np.random.default_rng(0)
        coords = rng.integers(0, 100, size=(300, 2))
        weights = rng.random(300)
        queries = [
            MultiRangeQuery([Box((0, 0), (99, 99))]) for _ in range(20)
        ]
        got = batch_query_sums(queries, coords, weights)
        np.testing.assert_allclose(got, np.full(20, weights.sum()),
                                   rtol=1e-10)


class TestSummaryQueryMany:
    def loop_reference(self, summary, queries):
        return [summary.query_multi(q) for q in queries]

    def test_sample_summary_matches_loop(self, setup):
        data, queries, rng = setup
        from repro.core.varopt import varopt_summary

        sample = varopt_summary(data, 80, rng)
        np.testing.assert_allclose(
            sample.query_many(queries),
            self.loop_reference(sample, queries),
            rtol=1e-10,
        )

    def test_exact_summary_matches_loop(self, setup):
        data, queries, _ = setup
        exact = ExactSummary(data)
        np.testing.assert_allclose(
            exact.query_many(queries),
            self.loop_reference(exact, queries),
            rtol=1e-10,
        )

    def test_qdigest_matches_loop(self, setup):
        data, queries, _ = setup
        for partial in ("half", "uniform", "lower"):
            digest = QDigestSummary(data, 50, partial=partial)
            np.testing.assert_allclose(
                digest.query_many(queries),
                self.loop_reference(digest, queries),
                rtol=1e-9,
            )

    def test_base_loop_still_used_by_default(self, setup):
        """Summaries without an override keep the reference loop."""
        data, queries, _ = setup

        class Constant(Summary):
            @property
            def size(self):
                return 1

            def query(self, box):
                return 1.0

        constant = Constant()
        assert constant.query_many(queries) == [
            float(len(q.boxes)) for q in queries
        ]

    def test_overlapping_boxes_match_union_semantics(self):
        """check_disjoint=False queries with overlap still match the loop."""
        sample = SampleSummary(coords=[[5, 5], [20, 20]],
                               weights=[10.0, 1.0], tau=0.0)
        overlap = MultiRangeQuery(
            [Box((0, 0), (9, 9)), Box((5, 5), (9, 9))],
            check_disjoint=False,
        )
        disjoint = MultiRangeQuery([Box((0, 0), (9, 9)),
                                    Box((10, 10), (30, 30))])
        got = sample.query_many([overlap, disjoint])
        assert got[0] == pytest.approx(sample.query_multi(overlap))  # 10, not 20
        assert got[1] == pytest.approx(sample.query_multi(disjoint))

    def test_empty_sample_summary(self, setup):
        _, queries, _ = setup
        empty = SampleSummary(
            coords=np.empty((0, queries[0].dims), dtype=np.int64),
            weights=np.empty(0),
            tau=0.0,
        )
        assert empty.query_many(queries) == [0.0] * len(queries)
