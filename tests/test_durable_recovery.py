"""Crash recovery exactness: kill-and-restore equals never-crashed.

The durability contract (``src/repro/durable/DURABILITY.md``) is that
a stream engine killed at *any* batch boundary and restored from its
checkpoint store produces **bit-identical** snapshots -- byte-equal
codec frames, not just statistically equivalent answers -- to an
engine that never crashed.  That is pinned here over 30 seeds, both
store backends, every window kind, and a crash point that lands
mid-pane (between ingest and seal), with the randomized summaries
(varopt, obliv sample) included so RNG state restoration is covered.
"""

import numpy as np
import pytest

from repro import obs
from repro.distributed import codec
from repro.durable import LogCheckpointStore, SQLiteCheckpointStore
from repro.stream import MicroBatch, StreamEngine, sliding, tumbling
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box

DOMAIN_SIZE = 1 << 12
METHODS = ["exact", "varopt", "sketch", "qdigest-stream", "obliv"]
QUERIES = [
    Box((0,), (DOMAIN_SIZE // 2,)),
    Box((100,), (4000,)),
]
BACKENDS = ["log", "sqlite"]
SEEDS = list(range(30))


def domain():
    return ProductDomain([OrderedDomain(DOMAIN_SIZE)])


def make_store(backend, tmp_path, name="ck"):
    if backend == "log":
        return LogCheckpointStore(str(tmp_path / name))
    return SQLiteCheckpointStore(str(tmp_path / f"{name}.sqlite"))


def stamped_batches(seed, n_batches=24, n=30):
    """Micro-batches with within-batch timestamp vectors (pane splits)."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n_batches):
        coords = rng.integers(0, DOMAIN_SIZE, size=(n, 1))
        weights = 1.0 + rng.pareto(1.3, size=n)
        stamps = np.sort(rng.uniform(i * 1.8, i * 1.8 + 1.7, size=n))
        out.append(MicroBatch(coords, weights, None, stamps))
    return out


def frames(engine):
    return {m: codec.to_bytes(engine.snapshot(m)) for m in engine.methods}


def kill_and_restore(store, window, data, seed, *, kill_at,
                     checkpoint_at=None):
    """Feed ``kill_at`` batches, crash, restore, feed the rest."""
    engine = StreamEngine(
        domain(), METHODS, 64, window=window, seed=seed,
        store=store, stream_id="s",
    )
    for i, batch in enumerate(data[:kill_at]):
        engine.process(batch)
        if checkpoint_at is not None and i == checkpoint_at:
            engine.checkpoint()
    del engine  # the crash: no clean shutdown, the store has everything
    restored = StreamEngine.restore(store, "s")
    for batch in data[kill_at:]:
        restored.process(batch)
    return restored


class TestKillRestoreBitExact:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_landmark_mid_stream(self, backend, seed, tmp_path):
        data = stamped_batches(seed)
        ref = StreamEngine(domain(), METHODS, 64, seed=seed)
        for batch in data:
            ref.process(batch)
        store = make_store(backend, tmp_path)
        restored = kill_and_restore(
            store, None, data, seed,
            kill_at=11 + seed % 7, checkpoint_at=seed % 5,
        )
        assert frames(restored) == frames(ref)
        assert restored.items_seen == ref.items_seen
        assert restored.query_many_now(QUERIES) == ref.query_many_now(
            QUERIES
        )
        store.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_tumbling_crash_mid_pane(self, backend, seed, tmp_path):
        # Pane width 4, batches straddle pane boundaries (1.7-wide
        # stamp spans every 1.8), and the kill point varies over seeds
        # so crashes land both mid-pane and at seal boundaries.
        data = stamped_batches(seed)
        window = tumbling(4.0)
        ref = StreamEngine(domain(), METHODS, 64, window=window, seed=seed)
        for batch in data:
            ref.process(batch)
        store = make_store(backend, tmp_path)
        restored = kill_and_restore(
            store, window, data, seed, kill_at=9 + seed % 9,
        )
        assert frames(restored) == frames(ref)
        lw_ref, lw_res = ref.last_window(), restored.last_window()
        assert (lw_ref is None) == (lw_res is None)
        if lw_ref is not None:
            for m in METHODS:
                assert codec.to_bytes(lw_res[m]) == codec.to_bytes(
                    lw_ref[m]
                )
        store.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sliding_with_checkpoint(self, backend, seed, tmp_path):
        data = stamped_batches(seed)
        window = sliding(8.0, 2.0)
        ref = StreamEngine(domain(), METHODS, 64, window=window, seed=seed)
        for batch in data:
            ref.process(batch)
        store = make_store(backend, tmp_path)
        restored = kill_and_restore(
            store, window, data, seed,
            kill_at=13 + seed % 5, checkpoint_at=6,
        )
        assert frames(restored) == frames(ref)
        assert restored.query_many_now(QUERIES) == ref.query_many_now(
            QUERIES
        )
        store.close()


class TestRecoveryMechanics:
    def test_restore_at_stream_end(self, tmp_path):
        data = stamped_batches(3)
        ref = StreamEngine(domain(), METHODS, 64, seed=3)
        for batch in data:
            ref.process(batch)
        store = make_store("log", tmp_path)
        restored = kill_and_restore(
            store, None, data, 3, kill_at=len(data)
        )
        assert frames(restored) == frames(ref)
        store.close()

    def test_checkpoint_compacts_the_log(self, tmp_path):
        store = make_store("log", tmp_path)
        engine = StreamEngine(
            domain(), ["exact"], 64, seed=1, store=store, stream_id="s"
        )
        data = stamped_batches(1, n_batches=12)
        for batch in data:
            engine.process(batch)
        before = len(store.records("s"))
        engine.checkpoint()
        after = len(store.records("s"))
        assert after < before  # batch records folded into the snapshot
        store.close()

    def test_restore_continues_persisting(self, tmp_path):
        # The restored engine keeps writing to the same store: a second
        # crash after the first recovery must also be survivable.
        data = stamped_batches(5)
        ref = StreamEngine(domain(), METHODS, 64, seed=5)
        for batch in data:
            ref.process(batch)
        store = make_store("sqlite", tmp_path)
        engine = StreamEngine(
            domain(), METHODS, 64, seed=5, store=store, stream_id="s"
        )
        for batch in data[:8]:
            engine.process(batch)
        del engine
        mid = StreamEngine.restore(store, "s")
        for batch in data[8:16]:
            mid.process(batch)
        mid.checkpoint()
        del mid  # second crash
        final = StreamEngine.restore(store, "s")
        for batch in data[16:]:
            final.process(batch)
        assert frames(final) == frames(ref)
        store.close()

    def test_duplicate_stream_id_rejected(self, tmp_path):
        store = make_store("log", tmp_path)
        StreamEngine(domain(), ["exact"], 64, store=store, stream_id="s")
        with pytest.raises(ValueError, match="restore"):
            StreamEngine(
                domain(), ["exact"], 64, store=store, stream_id="s"
            )
        store.close()

    def test_restore_unknown_stream_rejected(self, tmp_path):
        store = make_store("log", tmp_path)
        with pytest.raises(ValueError, match="no open record"):
            StreamEngine.restore(store, "nope")
        store.close()

    def test_seal_hook_not_refired_on_restore(self, tmp_path):
        sealed = []
        store = make_store("log", tmp_path)
        window = tumbling(4.0)
        engine = StreamEngine(
            domain(), ["exact"], 64, window=window, seed=2,
            store=store, stream_id="s",
            on_pane_sealed=lambda index, summaries: sealed.append(index),
        )
        data = stamped_batches(2, n_batches=16)
        for batch in data[:10]:
            engine.process(batch)
        fired_before = list(sealed)
        assert fired_before  # panes sealed pre-crash
        del engine
        restored = StreamEngine.restore(
            store, "s",
            on_pane_sealed=lambda index, summaries: sealed.append(index),
        )
        # restoring replays tail batches into already-sealed panes
        # without re-firing their hooks
        assert sealed == fired_before
        for batch in data[10:]:
            restored.process(batch)
        assert sealed == sorted(set(sealed))  # each pane sealed once
        store.close()


class TestLateItemsSatellite:
    def test_rejected_with_pane_and_timestamp(self):
        window = tumbling(4.0)
        engine = StreamEngine(domain(), ["exact"], 64, window=window)
        engine.process(MicroBatch(
            np.array([[1]]), np.array([1.0]), 9.0
        ))
        with pytest.raises(ValueError, match="non-decreasing") as err:
            engine.process(MicroBatch(
                np.array([[2]]), np.array([1.0]), 3.0
            ))
        message = str(err.value)
        assert "3" in message and "9" in message  # offending + clock
        assert "pane" in message
        assert "stream.late_items" in message

    def test_counted_in_obs(self):
        registry = obs.MetricsRegistry(enabled=True)
        window = tumbling(4.0)
        engine = StreamEngine(
            domain(), ["exact"], 64, window=window, registry=registry
        )
        engine.process(MicroBatch(np.array([[1]]), np.array([1.0]), 9.0))
        for bad_ts in (3.0, 1.0):
            with pytest.raises(ValueError):
                engine.process(MicroBatch(
                    np.array([[2]]), np.array([1.0]), bad_ts
                ))
        assert registry.counter("stream.late_items").value == 2

    def test_rejected_before_logging(self, tmp_path):
        # A rejected batch must not reach the write-ahead log, or the
        # restore replay would re-raise mid-recovery.
        store = LogCheckpointStore(str(tmp_path / "ck"))
        window = tumbling(4.0)
        engine = StreamEngine(
            domain(), ["exact"], 64, window=window,
            store=store, stream_id="s",
        )
        engine.process(MicroBatch(np.array([[1]]), np.array([2.0]), 9.0))
        with pytest.raises(ValueError):
            engine.process(MicroBatch(
                np.array([[2]]), np.array([1.0]), 3.0
            ))
        del engine
        restored = StreamEngine.restore(store, "s")  # must not raise
        assert restored.items_seen == 1
        store.close()
