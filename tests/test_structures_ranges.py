"""Tests for Box / MultiRangeQuery geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.hierarchy import BitHierarchy
from repro.structures.ranges import (
    Box,
    MultiRangeQuery,
    hierarchy_node_box,
    interval,
    product_box,
)


def boxes_2d(max_coord=63):
    """Hypothesis strategy for small 2-D boxes."""
    def make(x1, x2, y1, y2):
        return Box((min(x1, x2), min(y1, y2)), (max(x1, x2), max(y1, y2)))

    coord = st.integers(0, max_coord)
    return st.builds(make, coord, coord, coord, coord)


class TestBox:
    def test_rejects_mismatched_dims(self):
        with pytest.raises(ValueError):
            Box((0,), (1, 2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Box((5,), (4,))

    def test_volume(self):
        assert Box((0, 0), (3, 1)).volume == 8
        assert Box((7,), (7,)).volume == 1

    def test_contains_point(self):
        box = Box((2, 2), (5, 8))
        assert box.contains_point((2, 8))
        assert not box.contains_point((1, 5))
        assert not box.contains_point((2, 9))

    def test_contains_vectorized_matches_scalar(self):
        box = Box((2, 2), (5, 8))
        coords = np.array([[2, 8], [1, 5], [5, 2], [6, 6]])
        mask = box.contains(coords)
        expected = [box.contains_point(tuple(row)) for row in coords]
        assert mask.tolist() == expected

    def test_contains_1d_flat_array(self):
        box = interval(3, 7)
        mask = box.contains(np.array([1, 3, 7, 9]))
        assert mask.tolist() == [False, True, True, False]

    def test_intersects_symmetric(self):
        a = Box((0, 0), (4, 4))
        b = Box((4, 4), (8, 8))
        c = Box((5, 5), (8, 8))
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c) and not c.intersects(a)

    def test_intersection(self):
        a = Box((0, 0), (4, 4))
        b = Box((2, 3), (9, 9))
        inter = a.intersection(b)
        assert inter == Box((2, 3), (4, 4))
        assert a.intersection(Box((5, 5), (6, 6))) is None

    def test_contains_box(self):
        outer = Box((0, 0), (9, 9))
        assert outer.contains_box(Box((1, 2), (3, 4)))
        assert not outer.contains_box(Box((5, 5), (10, 10)))

    def test_overlap_fraction(self):
        cell = Box((0, 0), (3, 3))  # volume 16
        query = Box((2, 2), (9, 9))
        assert cell.overlap_fraction(query) == pytest.approx(4 / 16)
        assert cell.overlap_fraction(Box((8, 8), (9, 9))) == 0.0
        assert cell.overlap_fraction(Box((0, 0), (3, 3))) == 1.0

    def test_split(self):
        box = Box((0, 0), (7, 7))
        left, right = box.split(0, 3)
        assert left == Box((0, 0), (3, 7))
        assert right == Box((4, 0), (7, 7))
        assert left.volume + right.volume == box.volume

    def test_split_rejects_boundary(self):
        box = Box((0,), (7,))
        with pytest.raises(ValueError):
            box.split(0, 7)

    @given(boxes_2d(), boxes_2d())
    @settings(max_examples=80, deadline=None)
    def test_intersection_consistent_with_intersects(self, a, b):
        inter = a.intersection(b)
        assert (inter is not None) == a.intersects(b)
        if inter is not None:
            assert a.contains_box(inter) and b.contains_box(inter)

    @given(boxes_2d())
    @settings(max_examples=40, deadline=None)
    def test_self_intersection_identity(self, box):
        assert box.intersection(box) == box
        assert box.overlap_fraction(box) == pytest.approx(1.0)


class TestMultiRangeQuery:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MultiRangeQuery([])

    def test_rejects_mixed_dims(self):
        with pytest.raises(ValueError):
            MultiRangeQuery([interval(0, 1), Box((0, 0), (1, 1))])

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            MultiRangeQuery([interval(0, 5), interval(5, 9)])

    def test_disjoint_ok(self):
        q = MultiRangeQuery([interval(0, 4), interval(5, 9)])
        assert q.num_ranges == 2
        assert q.dims == 1
        assert len(q) == 2

    def test_contains_union(self):
        q = MultiRangeQuery([interval(0, 2), interval(8, 9)])
        mask = q.contains(np.array([0, 3, 8, 10]))
        assert mask.tolist() == [True, False, True, False]

    def test_iteration(self):
        boxes = [interval(0, 1), interval(3, 4)]
        q = MultiRangeQuery(boxes)
        assert list(q) == boxes


class TestConstructors:
    def test_interval(self):
        assert interval(2, 5) == Box((2,), (5,))

    def test_product_box(self):
        assert product_box((0, 3), (5, 9)) == Box((0, 5), (3, 9))

    def test_hierarchy_node_box(self):
        h = BitHierarchy(4)
        box = hierarchy_node_box(h, 2, 0b10)
        assert box == Box((8,), (11,))
