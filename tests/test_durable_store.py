"""Checkpoint store backends: framing, resume state, torn-tail recovery.

Both backends (append-only log, WAL-mode SQLite) must present the same
contract: monotone per-stream sequence numbers, bit-exact payload
round-trips (ndarrays included), resume-state bookkeeping, and
compaction primitives (``truncate`` / ``prune``).  The log backend
additionally survives a torn tail -- a partial final record from a
crash mid-write is dropped, everything before it is kept.
"""

import os
import zlib

import numpy as np
import pytest

from repro.durable import (
    LogCheckpointStore,
    SQLiteCheckpointStore,
    open_store,
)

BACKENDS = ["log", "sqlite"]


def make_store(backend, tmp_path, name="ck"):
    if backend == "log":
        return LogCheckpointStore(str(tmp_path / name))
    return SQLiteCheckpointStore(str(tmp_path / f"{name}.sqlite"))


@pytest.mark.parametrize("backend", BACKENDS)
class TestStoreContract:
    def test_append_records_round_trip(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        arr = np.arange(37, dtype=np.float64) * 1.5
        payloads = [
            {"a": 1, "b": "text"},
            {"arr": arr, "nested": {"x": None}},
            {"blob": b"\x00\xffraw"},
        ]
        seqs = [
            store.append("s", "batch", payload, pane=i)
            for i, payload in enumerate(payloads)
        ]
        assert seqs == sorted(seqs) and len(set(seqs)) == 3
        records = store.records("s")
        assert [r.kind for r in records] == ["batch"] * 3
        assert [r.pane for r in records] == [0, 1, 2]
        got = records[1].payload["arr"]
        np.testing.assert_array_equal(np.asarray(got), arr)
        assert np.asarray(got).dtype == arr.dtype
        assert bytes(records[2].payload["blob"]) == b"\x00\xffraw"
        store.close()

    def test_min_seq_filter_and_streams(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.append("a", "open", {"v": 0})
        s1 = store.append("a", "batch", {"v": 1})
        store.append("b", "open", {"v": 2})
        assert sorted(store.streams()) == ["a", "b"]
        tail = store.records("a", min_seq=s1)
        assert [r.payload["v"] for r in tail] == [1]
        assert store.records("missing") == []
        store.close()

    def test_resume_state(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        blank = store.resume_state("s")
        assert blank["next_seq"] == 0
        assert blank["last_sealed_pane"] == -1
        assert blank["checkpoints"] == 0
        store.append("s", "open", {})
        store.append("s", "batch", {}, pane=0)
        store.append("s", "seal", {}, pane=0)
        ck = store.append("s", "state", {})
        store.append("s", "seal", {}, pane=3)
        state = store.resume_state("s")
        assert state["next_seq"] == 5
        assert state["last_sealed_pane"] == 3
        assert state["checkpoint_seq"] == ck
        assert state["checkpoints"] == 1
        store.close()

    def test_truncate_keeps_open(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.append("s", "open", {"config": True})
        for i in range(4):
            store.append("s", "batch", {"i": i}, pane=0)
        last = store.append("s", "state", {"snap": 1})
        store.truncate("s", below_seq=last)
        kinds = [r.kind for r in store.records("s")]
        assert kinds == ["open", "state"]
        store.close()

    def test_prune_by_kind_and_pane(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.append("s", "open", {})
        for pane in range(5):
            store.append("s", "batch", {"pane": pane}, pane=pane)
            store.append("s", "seal", {"pane": pane}, pane=pane)
        store.prune("s", "batch", max_pane=2)
        batches = [r.pane for r in store.records("s") if r.kind == "batch"]
        assert batches == [3, 4]
        seals = [r.pane for r in store.records("s") if r.kind == "seal"]
        assert seals == [0, 1, 2, 3, 4]  # untouched
        store.prune("s", "seal", max_pane=1)
        seals = [r.pane for r in store.records("s") if r.kind == "seal"]
        assert seals == [2, 3, 4]
        store.close()

    def test_seq_survives_compaction(self, backend, tmp_path):
        # Sequence numbers keep growing after truncate/prune: recovery
        # replay order must never be ambiguous.
        store = make_store(backend, tmp_path)
        store.append("s", "open", {})
        for i in range(3):
            store.append("s", "batch", {"i": i}, pane=0)
        high = store.append("s", "state", {})
        store.truncate("s", below_seq=high)
        nxt = store.append("s", "batch", {"i": 99}, pane=1)
        assert nxt > high
        store.close()

    def test_reopen_persists(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.append("s", "open", {"cfg": 7})
        store.append("s", "batch", {"i": 0}, pane=0)
        store.sync()
        store.close()
        store2 = make_store(backend, tmp_path)
        records = store2.records("s")
        assert [r.kind for r in records] == ["open", "batch"]
        assert records[0].payload["cfg"] == 7
        # appends continue from the persisted sequence
        seq = store2.append("s", "batch", {"i": 1}, pane=0)
        assert seq == records[-1].seq + 1
        store2.close()

    def test_context_manager(self, backend, tmp_path):
        with make_store(backend, tmp_path) as store:
            store.append("s", "open", {})
        store2 = make_store(backend, tmp_path)
        assert [r.kind for r in store2.records("s")] == ["open"]
        store2.close()


class TestLogTornTail:
    def _log_file(self, directory):
        names = [n for n in os.listdir(directory) if n.endswith(".rdur")]
        assert len(names) == 1
        return os.path.join(directory, names[0])

    def test_partial_final_record_dropped(self, tmp_path):
        store = LogCheckpointStore(str(tmp_path / "ck"))
        store.append("s", "open", {"cfg": 1})
        store.append("s", "batch", {"i": 0}, pane=0)
        store.append("s", "batch", {"i": 1}, pane=0)
        store.close()
        path = self._log_file(str(tmp_path / "ck"))
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:  # crash mid-write: lose 3 bytes
            fh.truncate(size - 3)
        store2 = LogCheckpointStore(str(tmp_path / "ck"))
        records = store2.records("s")
        assert [r.payload.get("i") for r in records] == [None, 0]
        # the store stays writable and seqs continue past the lost one
        seq = store2.append("s", "batch", {"i": 2}, pane=0)
        assert seq == records[-1].seq + 1
        store2.close()

    def test_corrupt_crc_truncates_from_there(self, tmp_path):
        store = LogCheckpointStore(str(tmp_path / "ck"))
        store.append("s", "open", {})
        good = store.append("s", "batch", {"i": 0}, pane=0)
        store.append("s", "batch", {"i": 1}, pane=0)
        store.close()
        path = self._log_file(str(tmp_path / "ck"))
        with open(path, "r+b") as fh:  # flip one bit in the last body
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0x01]))
        store2 = LogCheckpointStore(str(tmp_path / "ck"))
        assert [r.seq for r in store2.records("s")][-1] == good
        store2.close()


class TestOpenStore:
    def test_specs(self, tmp_path):
        log = open_store(f"log:{tmp_path / 'logs'}")
        assert isinstance(log, LogCheckpointStore)
        log.close()
        sq = open_store(f"sqlite:{tmp_path / 'ck.db'}")
        assert isinstance(sq, SQLiteCheckpointStore)
        sq.close()
        by_suffix = open_store(str(tmp_path / "auto.sqlite"))
        assert isinstance(by_suffix, SQLiteCheckpointStore)
        by_suffix.close()
        as_dir = open_store(str(tmp_path / "plain_dir"))
        assert isinstance(as_dir, LogCheckpointStore)
        as_dir.close()

    def test_passthrough(self, tmp_path):
        store = LogCheckpointStore(str(tmp_path / "ck"))
        assert open_store(store) is store
        store.close()
