"""Tests for the hierarchy-aware sampler (Section 3): Delta < 1.

Includes the paper's Figure 1 worked example: 10 weighted leaves, a
target size of 4, and the guarantee that every internal node holds the
floor or ceiling of its expected count.
"""

import numpy as np
import pytest

from repro.aware.hierarchy_sampler import (
    hierarchy_aware_sample,
    hierarchy_aware_summary,
)
from repro.core.discrepancy import max_hierarchy_discrepancy
from repro.core.ipps import ipps_probabilities
from repro.structures.hierarchy import BitHierarchy, ExplicitHierarchy
from repro.structures.product import ProductDomain


class TestFigure1Example:
    """The worked example of Figure 1 (weights 6,4,2,3,2,4,3,8,7,1; s=4)."""

    WEIGHTS = np.array([6.0, 4.0, 2.0, 3.0, 2.0, 4.0, 3.0, 8.0, 7.0, 1.0])

    def figure1_hierarchy(self):
        # The example's tree is irregular; we embed the 10 leaves in a
        # 16-leaf binary hierarchy preserving the grouping
        # ((1,2),(3,4)) , ((5),(6,7),(8,9,10)):
        # left subtree = keys 0..7, right subtree = keys 8..15.
        keys = np.array([0, 1, 2, 3, 8, 10, 11, 12, 13, 14])
        return BitHierarchy(4), keys

    def test_ipps_probabilities_match_paper(self):
        # The paper lists IPPS probabilities for s=4:
        # 0.3 0.6 0.4 0.7 0.1 0.8 0.4 0.2 0.3 0.2 (scaled by tau=10...)
        p, tau = ipps_probabilities(self.WEIGHTS, 4)
        expected = np.array([0.6, 0.4, 0.2, 0.3, 0.2, 0.4, 0.3, 0.8, 0.7, 0.1])
        # Paper's figure lists the leaf weights in a different leaf
        # order than its IPPS table; verify the multiset matches.
        assert tau == pytest.approx(10.0)
        assert sorted(np.round(p, 6)) == pytest.approx(sorted(expected))

    def test_sample_size_is_exactly_four(self):
        h, keys = self.figure1_hierarchy()
        for t in range(50):
            included, tau, probs = hierarchy_aware_sample(
                keys, self.WEIGHTS, 4, h, np.random.default_rng(t)
            )
            assert included.size == 4

    def test_every_node_floor_or_ceiling(self):
        h, keys = self.figure1_hierarchy()
        for t in range(100):
            included, tau, probs = hierarchy_aware_sample(
                keys, self.WEIGHTS, 4, h, np.random.default_rng(t)
            )
            mask = np.zeros(len(keys), bool)
            mask[included] = True
            delta = max_hierarchy_discrepancy(h, keys, probs, mask)
            assert delta < 1.0 + 1e-9


class TestHierarchyAware:
    def make_input(self, seed, bits=10, n=150):
        rng = np.random.default_rng(seed)
        h = BitHierarchy(bits)
        keys = rng.choice(h.num_leaves, size=n, replace=False)
        weights = 1.0 + rng.pareto(1.2, size=n)
        return h, keys, weights

    def test_exact_sample_size(self):
        h, keys, weights = self.make_input(0)
        for s in (3, 20, 77):
            included, _, _ = hierarchy_aware_sample(
                keys, weights, s, h, np.random.default_rng(1)
            )
            assert included.size == s

    def test_node_discrepancy_below_one(self):
        # The headline Section 3 guarantee across many instances.
        for seed in range(30):
            h, keys, weights = self.make_input(seed)
            included, tau, probs = hierarchy_aware_sample(
                keys, weights, 25, h, np.random.default_rng(seed + 500)
            )
            mask = np.zeros(len(keys), bool)
            mask[included] = True
            delta = max_hierarchy_discrepancy(h, keys, probs, mask)
            assert delta < 1.0 + 1e-9, f"seed {seed}: delta {delta}"

    def test_explicit_hierarchy_discrepancy(self):
        rng = np.random.default_rng(9)
        h = ExplicitHierarchy((4, 3, 2, 5))
        keys = rng.choice(h.num_leaves, size=80, replace=False)
        weights = 1.0 + rng.pareto(1.0, size=80)
        for t in range(20):
            included, tau, probs = hierarchy_aware_sample(
                keys, weights, 12, h, np.random.default_rng(t)
            )
            mask = np.zeros(80, bool)
            mask[included] = True
            assert max_hierarchy_discrepancy(h, keys, probs, mask) < 1 + 1e-9

    def test_inclusion_probabilities_preserved(self):
        h = BitHierarchy(4)
        keys = np.arange(8)
        weights = np.array([5.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0, 1.0])
        s = 4
        p, _ = ipps_probabilities(weights, s)
        counts = np.zeros(8)
        trials = 6000
        for t in range(trials):
            included, _, _ = hierarchy_aware_sample(
                keys, weights, s, h, np.random.default_rng(t)
            )
            counts[included] += 1
        np.testing.assert_allclose(counts / trials, p, atol=0.03)

    def test_unbiased_node_estimates(self):
        # HT estimates of a subtree's weight are unbiased.
        h, keys, weights = self.make_input(4, bits=8, n=100)
        node_lo, node_hi = h.node_interval(2, 1)
        subtree = (keys >= node_lo) & (keys < node_hi)
        truth = weights[subtree].sum()
        estimates = []
        for t in range(3000):
            included, tau, _ = hierarchy_aware_sample(
                keys, weights, 20, h, np.random.default_rng(t)
            )
            adj = np.maximum(weights[included], tau)
            mask = (keys[included] >= node_lo) & (keys[included] < node_hi)
            estimates.append(adj[mask].sum())
        assert np.mean(estimates) == pytest.approx(truth, rel=0.08)

    def test_keys_out_of_domain_rejected(self):
        h = BitHierarchy(4)
        with pytest.raises(ValueError):
            hierarchy_aware_sample(
                np.array([99]), np.array([1.0]), 1, h,
                np.random.default_rng(0),
            )

    def test_duplicate_leaves(self):
        h = BitHierarchy(4)
        keys = np.array([3, 3, 3, 3, 7, 7])
        weights = np.ones(6)
        included, _, _ = hierarchy_aware_sample(
            keys, weights, 3, h, np.random.default_rng(0)
        )
        assert included.size == 3

    def test_summary_interface(self, hier_dataset, rng):
        summary = hierarchy_aware_summary(hier_dataset, 25, rng)
        assert summary.size == 25

    def test_deep_hierarchy_no_recursion_error(self):
        rng = np.random.default_rng(10)
        h = BitHierarchy(32)
        keys = rng.integers(0, 2**32, size=500)
        weights = 1.0 + rng.pareto(1.1, size=500)
        included, _, _ = hierarchy_aware_sample(
            keys, weights, 40, h, rng
        )
        assert included.size == 40
