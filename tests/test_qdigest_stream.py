"""Tests for the classic streaming 1-D q-digest."""

import numpy as np
import pytest

from repro.structures.ranges import interval
from repro.summaries.qdigest_stream import StreamingQDigest


def build(keys, weights, bits=10, k=32, compress_every=64):
    qd = StreamingQDigest(bits=bits, k=k, compress_every=compress_every)
    qd.insert_many(keys, weights)
    qd.compress()
    return qd


class TestValidation:
    def test_bad_bits(self):
        with pytest.raises(ValueError):
            StreamingQDigest(0, 10)
        with pytest.raises(ValueError):
            StreamingQDigest(63, 10)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            StreamingQDigest(8, 0)

    def test_key_out_of_domain(self):
        qd = StreamingQDigest(4, 8)
        with pytest.raises(ValueError):
            qd.insert(16)

    def test_negative_weight(self):
        qd = StreamingQDigest(4, 8)
        with pytest.raises(ValueError):
            qd.insert(3, -1.0)

    def test_zero_weight_noop(self):
        qd = StreamingQDigest(4, 8)
        qd.insert(3, 0.0)
        assert qd.total == 0.0 and qd.size == 0


class TestAccuracy:
    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 1024, size=2000)
        weights = 1.0 + rng.pareto(1.2, size=2000)
        qd = build(keys, weights)
        assert qd.total == pytest.approx(weights.sum())
        assert qd.range_sum(0, 1023) == pytest.approx(weights.sum())

    def test_compression_bounds_size(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 1024, size=5000)
        qd = build(keys, np.ones(5000), bits=10, k=16)
        # O(k log domain): generous constant.
        assert qd.size <= 3 * 16 * 11

    def test_range_error_within_guarantee(self):
        rng = np.random.default_rng(2)
        n = 4000
        keys = rng.integers(0, 1024, size=n)
        weights = np.ones(n)
        qd = build(keys, weights, bits=10, k=64)
        for lo, hi in [(0, 511), (100, 900), (37, 38), (512, 1023)]:
            truth = weights[(keys >= lo) & (keys <= hi)].sum()
            est = qd.range_sum(lo, hi)
            # Two endpoints, each off by at most the error bound.
            assert abs(est - truth) <= 2 * qd.error_bound()

    def test_exact_when_k_huge(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 256, size=300)
        weights = 1.0 + rng.random(300)
        qd = build(keys, weights, bits=8, k=10**9)
        truth = weights[(keys >= 30) & (keys <= 200)].sum()
        assert qd.range_sum(30, 200) == pytest.approx(truth)

    def test_box_interface(self):
        qd = build([1, 5, 9], [1.0, 2.0, 3.0], bits=4, k=10**9)
        assert qd.query(interval(0, 15)) == pytest.approx(6.0)

    def test_quantiles_monotone_and_bounded(self):
        rng = np.random.default_rng(4)
        keys = np.sort(rng.integers(0, 1024, size=3000))
        qd = build(keys, np.ones(3000), bits=10, k=64)
        qs = [qd.quantile(phi) for phi in (0.1, 0.25, 0.5, 0.75, 0.9)]
        assert qs == sorted(qs)
        # The median estimate should be near the true median rank.
        true_median = int(np.median(keys))
        assert abs(qs[2] - true_median) < 256

    def test_quantile_validation(self):
        qd = StreamingQDigest(4, 8)
        with pytest.raises(ValueError):
            qd.quantile(1.5)

    def test_range_sum_validation(self):
        qd = StreamingQDigest(4, 8)
        with pytest.raises(ValueError):
            qd.range_sum(5, 4)
