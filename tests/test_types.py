"""Tests for the Dataset data model."""

import numpy as np
import pytest

from repro.core.types import Dataset
from repro.structures.hierarchy import BitHierarchy
from repro.structures.product import ProductDomain, line_domain


class TestConstruction:
    def test_one_dimensional(self):
        data = Dataset.one_dimensional([3, 1, 2], [1.0, 2.0, 3.0], size=10)
        assert data.n == 3
        assert data.dims == 1
        np.testing.assert_array_equal(data.keys_1d(), [3, 1, 2])

    def test_from_items_scalar_keys(self):
        data = Dataset.from_items([(1, 2.0), (5, 3.0)], line_domain(10))
        assert data.n == 2
        assert data.total_weight == pytest.approx(5.0)

    def test_from_items_tuple_keys(self):
        domain = ProductDomain([BitHierarchy(4), BitHierarchy(4)])
        data = Dataset.from_items([((1, 2), 1.0), ((3, 4), 2.0)], domain)
        assert data.dims == 2

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            Dataset.one_dimensional([1], [-1.0], size=10)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Dataset(
                coords=np.array([[1], [2]]),
                weights=np.array([1.0]),
                domain=line_domain(10),
            )

    def test_rejects_out_of_domain(self):
        with pytest.raises(ValueError):
            Dataset.one_dimensional([10], [1.0], size=10)


class TestAccessors:
    def test_axis(self):
        domain = ProductDomain([BitHierarchy(4), BitHierarchy(4)])
        data = Dataset(
            coords=np.array([[1, 2], [3, 4]]),
            weights=np.array([1.0, 1.0]),
            domain=domain,
        )
        np.testing.assert_array_equal(data.axis(1), [2, 4])

    def test_keys_1d_requires_one_dim(self):
        domain = ProductDomain([BitHierarchy(4), BitHierarchy(4)])
        data = Dataset(
            coords=np.array([[1, 2]]),
            weights=np.array([1.0]),
            domain=domain,
        )
        with pytest.raises(ValueError):
            data.keys_1d()

    def test_iter_items(self):
        data = Dataset.one_dimensional([3, 1], [1.5, 2.5], size=10)
        items = list(data.iter_items())
        assert items == [((3,), 1.5), ((1,), 2.5)]

    def test_len(self):
        data = Dataset.one_dimensional([3, 1], [1.0, 1.0], size=10)
        assert len(data) == 2


class TestTransforms:
    def test_subset_by_mask(self):
        data = Dataset.one_dimensional([1, 2, 3], [1.0, 2.0, 3.0], size=10)
        sub = data.subset(np.array([True, False, True]))
        assert sub.n == 2
        assert sub.total_weight == pytest.approx(4.0)

    def test_subset_by_indices(self):
        data = Dataset.one_dimensional([1, 2, 3], [1.0, 2.0, 3.0], size=10)
        sub = data.subset(np.array([2]))
        assert sub.keys_1d().tolist() == [3]

    def test_aggregate_duplicates(self):
        data = Dataset.one_dimensional([1, 1, 2], [1.0, 2.0, 3.0], size=10)
        merged = data.aggregate_duplicates()
        assert merged.n == 2
        by_key = dict(zip(merged.keys_1d().tolist(), merged.weights))
        assert by_key[1] == pytest.approx(3.0)
        assert by_key[2] == pytest.approx(3.0)

    def test_aggregate_duplicates_empty(self):
        data = Dataset.one_dimensional([], [], size=10)
        assert data.aggregate_duplicates().n == 0
