"""Statistical equivalence of the vectorized and scalar build paths.

The chain kernels consume randomness in a different order than the
historical scalar loops, so seeded runs diverge; what must hold is
that both paths realize the *same sampling distribution*.  For every
sampler with a ``strict_seed`` switch this suite checks, over >= 50
seeds per path:

* threshold agreement -- tau is RNG-free and must match per seed;
* realized sample size -- floor/ceil of the target on every seed;
* unbiasedness -- both paths' mean range-sum estimates match the
  exact answer within Monte Carlo noise;
* variance agreement -- the two paths' estimate variances are of the
  same scale;
* the structure-aware discrepancy guarantees hold on the vectorized
  path seed for seed (they are hard guarantees, not statistical).
"""

import numpy as np
import pytest

from repro.aware.disjoint import disjoint_aware_sample
from repro.aware.hierarchy_sampler import hierarchy_aware_sample
from repro.aware.order_sampler import order_aware_sample
from repro.aware.product_sampler import product_aware_sample
from repro.core.discrepancy import (
    max_hierarchy_discrepancy,
    max_interval_discrepancy,
    max_prefix_discrepancy,
)
from repro.core.ipps import ipps_probabilities
from repro.core.types import Dataset
from repro.core.varopt import stream_varopt_summary, varopt_sample
from repro.structures.hierarchy import BitHierarchy
from repro.structures.product import ProductDomain
from repro.twopass.two_pass import two_pass_summary

SEEDS = range(60)
N = 300
S = 25


@pytest.fixture(scope="module")
def payload():
    rng = np.random.default_rng(1234)
    keys = np.sort(rng.choice(4096, size=N, replace=False))
    weights = 1.0 + rng.pareto(1.3, size=N)
    labels = keys // 256
    coords2 = rng.integers(0, 512, size=(N, 2))
    hierarchy = BitHierarchy(12)
    probs, tau = ipps_probabilities(weights, S)
    return {
        "keys": keys,
        "weights": weights,
        "labels": labels,
        "coords2": coords2,
        "hierarchy": hierarchy,
        "probs": probs,
        "tau": tau,
    }


def _samplers(payload):
    """Name -> callable(rng, strict) -> (included, tau)."""
    keys = payload["keys"]
    w = payload["weights"]
    h = payload["hierarchy"]

    def order(rng, strict):
        inc, tau, _ = order_aware_sample(keys, w, S, rng, strict_seed=strict)
        return inc, tau

    def disjoint(rng, strict):
        inc, tau, _ = disjoint_aware_sample(
            payload["labels"], w, S, rng, strict_seed=strict
        )
        return inc, tau

    def hierarchy(rng, strict):
        inc, tau, _ = hierarchy_aware_sample(
            keys, w, S, h, rng, strict_seed=strict
        )
        return inc, tau

    def product(rng, strict):
        inc, tau, _ = product_aware_sample(
            payload["coords2"], w, S, rng, strict_seed=strict
        )
        return inc, tau

    def varopt(rng, strict):
        return varopt_sample(w, S, rng, strict_seed=strict)

    return {
        "order": order,
        "disjoint": disjoint,
        "hierarchy": hierarchy,
        "product": product,
        "varopt": varopt,
    }


def _subset_estimate(included, tau, weights, subset_mask):
    """Horvitz-Thompson estimate of the subset's weight."""
    adjusted = np.maximum(weights[included], tau) if tau > 0 else weights[included]
    return float(adjusted[subset_mask[included]].sum())


@pytest.mark.parametrize(
    "name", ["order", "disjoint", "hierarchy", "product", "varopt"]
)
def test_tau_and_size_agree_per_seed(payload, name):
    sampler = _samplers(payload)[name]
    for seed in SEEDS:
        inc_v, tau_v = sampler(np.random.default_rng(seed), False)
        inc_s, tau_s = sampler(np.random.default_rng(seed), True)
        assert tau_v == tau_s == payload["tau"]
        assert abs(inc_v.size - S) <= 1
        assert abs(inc_s.size - S) <= 1


@pytest.mark.parametrize(
    "name", ["order", "disjoint", "hierarchy", "product", "varopt"]
)
def test_unbiased_and_same_variance_scale(payload, name):
    sampler = _samplers(payload)[name]
    weights = payload["weights"]
    if name == "product":
        subset_mask = payload["coords2"][:, 0] < 170
    else:
        subset_mask = payload["keys"] < 1400
    truth = float(weights[subset_mask].sum())
    estimates = {True: [], False: []}
    for strict in (False, True):
        for seed in SEEDS:
            inc, tau = sampler(np.random.default_rng(seed), strict)
            estimates[strict].append(
                _subset_estimate(inc, tau, weights, subset_mask)
            )
    for strict, values in estimates.items():
        values = np.asarray(values)
        sem = values.std(ddof=1) / np.sqrt(values.size)
        assert abs(values.mean() - truth) <= 4.0 * sem + 1e-9, (
            f"{name} strict={strict}: mean {values.mean():.2f} vs "
            f"truth {truth:.2f} (sem {sem:.2f})"
        )
    var_v = np.var(estimates[False], ddof=1)
    var_s = np.var(estimates[True], ddof=1)
    if var_s > 0 and var_v > 0:
        ratio = var_v / var_s
        assert 0.3 < ratio < 3.3, f"{name}: variance ratio {ratio:.2f}"


def test_structural_guarantees_vectorized(payload):
    keys = payload["keys"]
    w = payload["weights"]
    probs = payload["probs"]
    h = payload["hierarchy"]
    for seed in SEEDS:
        inc, _, _ = order_aware_sample(
            keys, w, S, np.random.default_rng(seed)
        )
        mask = np.zeros(N, dtype=bool)
        mask[inc] = True
        assert max_prefix_discrepancy(keys, probs, mask) < 1.0 + 1e-9
        assert max_interval_discrepancy(keys, probs, mask) < 2.0 + 1e-9

        inc, _, _ = hierarchy_aware_sample(
            keys, w, S, h, np.random.default_rng(seed)
        )
        mask = np.zeros(N, dtype=bool)
        mask[inc] = True
        assert max_hierarchy_discrepancy(h, keys, probs, mask) < 1.0 + 1e-9

        inc, _, _ = disjoint_aware_sample(
            payload["labels"], w, S, np.random.default_rng(seed)
        )
        mask = np.zeros(N, dtype=bool)
        mask[inc] = True
        for label in np.unique(payload["labels"]):
            in_range = payload["labels"] == label
            expected = probs[in_range].sum()
            actual = mask[in_range].sum()
            assert abs(actual - expected) < 1.0 + 1e-9


def test_merge_strict_seed_escape_hatch():
    """merge/downsample offer the historical scalar RNG stream too."""
    rng = np.random.default_rng(5)
    datasets = [
        Dataset.one_dimensional(
            np.arange(k * 100, k * 100 + 100),
            1.0 + rng.pareto(1.3, size=100),
            size=1000,
        )
        for k in range(2)
    ]
    samples = [
        varopt_sample(d.weights, 30, np.random.default_rng(k))
        for k, d in enumerate(datasets)
    ]
    from repro.core.estimator import SampleSummary

    summaries = [
        SampleSummary(d.coords[inc], d.weights[inc], tau)
        for d, (inc, tau) in zip(datasets, samples)
    ]
    merged_v = summaries[0].merge(
        summaries[1], s=30, rng=np.random.default_rng(9)
    )
    merged_s = summaries[0].merge(
        summaries[1], s=30, rng=np.random.default_rng(9), strict_seed=True
    )
    assert merged_v.tau == merged_s.tau
    assert abs(merged_v.size - 30) <= 1 and abs(merged_s.size - 30) <= 1
    big = merged_v if merged_v.size >= merged_s.size else merged_s
    down = big.downsample(10, np.random.default_rng(3), strict_seed=True)
    assert abs(down.size - 10) <= 1


class TestDatasetBuilders:
    """The dataset-level builders: two-pass ``aware`` and ``obliv``."""

    @pytest.fixture(scope="class")
    def dataset(self):
        rng = np.random.default_rng(77)
        keys = rng.choice(50_000, size=400, replace=False)
        weights = 1.0 + rng.pareto(1.2, size=400)
        return Dataset.one_dimensional(keys, weights, size=50_000)

    @pytest.mark.parametrize(
        "builder", [two_pass_summary, stream_varopt_summary]
    )
    def test_tau_sizes_and_unbiased_totals(self, dataset, builder):
        totals = {True: [], False: []}
        for strict in (False, True):
            for seed in SEEDS:
                summary = builder(
                    dataset, 30, np.random.default_rng(seed),
                    strict_seed=strict,
                )
                assert np.isclose(
                    summary.tau,
                    ipps_probabilities(dataset.weights, 30)[1],
                    rtol=1e-9,
                )
                assert abs(summary.size - 30) <= 1
                totals[strict].append(summary.estimate_total())
        truth = dataset.total_weight
        for strict, values in totals.items():
            values = np.asarray(values)
            sem = values.std(ddof=1) / np.sqrt(values.size)
            assert abs(values.mean() - truth) <= 4.0 * sem + 1e-9
        var_v = np.var(totals[False], ddof=1)
        var_s = np.var(totals[True], ddof=1)
        if var_s > 0 and var_v > 0:
            assert 0.3 < var_v / var_s < 3.3
