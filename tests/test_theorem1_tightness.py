"""Theorem 1(ii): the Delta < 2 order bound is essentially tight.

The lower-bound construction uses many keys with tiny equal
probabilities: any VarOpt sample must occasionally place two included
keys nearly 2 probability-units apart (or nearly 0 apart), driving the
interval discrepancy towards 2.  We cannot test *nonexistence* of a
better scheme, but we verify that our sampler's worst case on such
inputs approaches 2 (so the guarantee it provides cannot be sharpened)
while staying strictly below it (so the theorem's upper bound holds).
"""

import numpy as np
import pytest

from repro.aware.order_sampler import order_aware_sample
from repro.core.discrepancy import max_interval_discrepancy


class TestTightness:
    def make_adversarial(self, m=8, eps_scale=40):
        # p_i = eps << 1 with total mass >= 5m (Appendix D construction).
        n = 5 * m * eps_scale
        keys = np.arange(n)
        weights = np.ones(n)
        s = 5 * m
        return keys, weights, s

    def test_worst_case_approaches_two(self):
        keys, weights, s = self.make_adversarial()
        worst = 0.0
        for t in range(300):
            included, tau, probs = order_aware_sample(
                keys, weights, s, np.random.default_rng(t)
            )
            mask = np.zeros(len(keys), bool)
            mask[included] = True
            worst = max(
                worst, max_interval_discrepancy(keys, probs, mask)
            )
        # Tight from below ...
        assert worst > 1.5
        # ... and the Theorem 1(i) upper bound still holds.
        assert worst < 2.0 + 1e-9

    def test_uniform_tiny_probabilities_still_exact_size(self):
        keys, weights, s = self.make_adversarial(m=4)
        included, tau, probs = order_aware_sample(
            keys, weights, s, np.random.default_rng(0)
        )
        assert included.size == s

    def test_systematic_beats_varopt_on_this_metric(self):
        # Appendix D: systematic sampling achieves Delta < 1 here --
        # the price is positive correlations, not discrepancy.
        from repro.aware.systematic import systematic_sample

        keys, weights, s = self.make_adversarial(m=4)
        worst = 0.0
        for t in range(100):
            included, tau, probs = systematic_sample(
                keys, weights, s, np.random.default_rng(t)
            )
            mask = np.zeros(len(keys), bool)
            mask[included] = True
            worst = max(
                worst, max_interval_discrepancy(keys, probs, mask)
            )
        assert worst < 1.0 + 1e-9
