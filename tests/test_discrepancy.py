"""Tests for discrepancy measurement utilities."""

import numpy as np
import pytest

from repro.core.discrepancy import (
    box_discrepancy,
    discrepancy_summary,
    hierarchy_node_discrepancies,
    max_box_discrepancy,
    max_hierarchy_discrepancy,
    max_interval_discrepancy,
    max_prefix_discrepancy,
    multirange_discrepancy,
    prefix_discrepancies,
)
from repro.structures.hierarchy import BitHierarchy
from repro.structures.ranges import Box, MultiRangeQuery, interval


def brute_force_interval_max(keys, probs, included):
    """O(n^2) reference for the interval discrepancy maximum."""
    order = np.argsort(keys)
    deltas = included[order].astype(float) - probs[order]
    best = 0.0
    n = len(deltas)
    for i in range(n):
        running = 0.0
        for j in range(i, n):
            running += deltas[j]
            best = max(best, abs(running))
    return best


class TestPrefixAndInterval:
    def test_zero_when_perfect(self):
        keys = np.arange(10)
        probs = np.full(10, 0.5)
        included = np.array([True, False] * 5)
        # Prefix discrepancy alternates between 0.5 and 0.
        assert max_prefix_discrepancy(keys, probs, included) == pytest.approx(0.5)

    def test_prefix_array_shape(self):
        keys = np.arange(4)
        pref = prefix_discrepancies(keys, np.full(4, 0.5), np.zeros(4, bool))
        assert pref.shape == (5,)
        assert pref[0] == 0.0

    def test_interval_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        for trial in range(10):
            n = 30
            keys = rng.permutation(1000)[:n]
            probs = rng.random(n)
            included = rng.random(n) < probs
            fast = max_interval_discrepancy(keys, probs, included)
            slow = brute_force_interval_max(keys, probs, included)
            assert fast == pytest.approx(slow, abs=1e-9)

    def test_interval_at_least_prefix(self):
        rng = np.random.default_rng(1)
        n = 50
        keys = np.arange(n)
        probs = rng.random(n)
        included = rng.random(n) < probs
        assert max_interval_discrepancy(
            keys, probs, included
        ) >= max_prefix_discrepancy(keys, probs, included) - 1e-12

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            max_prefix_discrepancy(
                np.arange(3), np.ones(2), np.zeros(3, bool)
            )


class TestHierarchyDiscrepancy:
    def test_per_depth_shape(self):
        h = BitHierarchy(5)
        keys = np.arange(32)
        probs = np.full(32, 0.25)
        included = np.zeros(32, bool)
        per_depth = hierarchy_node_discrepancies(h, keys, probs, included)
        assert per_depth.shape == (6,)
        assert per_depth[0] == pytest.approx(8.0)  # root: 0 vs 8 expected

    def test_max_over_nodes_bruteforce(self):
        h = BitHierarchy(6)
        rng = np.random.default_rng(2)
        n = 40
        keys = rng.choice(64, size=n, replace=False)
        probs = rng.random(n)
        included = rng.random(n) < probs
        fast = max_hierarchy_discrepancy(h, keys, probs, included)
        slow = 0.0
        for depth in range(h.depth + 1):
            for node in range(64 // h.span(depth)):
                lo, hi = h.node_interval(depth, node)
                mask = (keys >= lo) & (keys < hi)
                slow = max(
                    slow,
                    abs(included[mask].sum() - probs[mask].sum()),
                )
        assert fast == pytest.approx(slow, abs=1e-9)

    def test_summary_bundle(self):
        h = BitHierarchy(4)
        keys = np.arange(16)
        probs = np.full(16, 0.5)
        included = np.zeros(16, bool)
        bundle = discrepancy_summary(keys, probs, included, hierarchy=h)
        assert set(bundle) == {"prefix", "interval", "hierarchy"}
        assert bundle["hierarchy"] == pytest.approx(8.0)


class TestBoxDiscrepancy:
    def test_single_box(self):
        coords = np.array([[1, 1], [3, 3], [5, 5]])
        probs = np.array([0.5, 0.5, 0.5])
        included = np.array([True, False, True])
        box = Box((0, 0), (3, 3))
        assert box_discrepancy(coords, probs, included, box) == pytest.approx(0.0)
        box2 = Box((0, 0), (5, 5))
        assert box_discrepancy(coords, probs, included, box2) == pytest.approx(0.5)

    def test_max_over_boxes(self):
        coords = np.array([[1], [3]])
        probs = np.array([0.5, 0.5])
        included = np.array([True, True])
        boxes = [interval(0, 1), interval(0, 3)]
        assert max_box_discrepancy(coords, probs, included, boxes) == pytest.approx(1.0)

    def test_max_over_empty(self):
        assert max_box_discrepancy(
            np.empty((0, 1)), np.empty(0), np.empty(0, bool), []
        ) == 0.0

    def test_multirange(self):
        coords = np.array([[1], [5], [9]])
        probs = np.array([0.4, 0.4, 0.4])
        included = np.array([True, False, True])
        q = MultiRangeQuery([interval(0, 2), interval(8, 9)])
        assert multirange_discrepancy(
            coords, probs, included, q
        ) == pytest.approx(abs(2 - 0.8))
