"""Tests for the CLI runner and the runnable examples."""

import pathlib
import runpy
import subprocess
import sys

import numpy as np
import pytest

from repro.experiments.__main__ import main as cli_main

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2a", "fig3c", "fig4b"):
            assert name in out

    def test_run_writes_output(self, tmp_path, capsys, monkeypatch):
        # Run the cheapest figure at a tiny scale.
        import repro.experiments.__main__ as cli
        import repro.experiments.figures as figures

        def tiny_fig3a(dataset):
            return figures.fig3a(dataset, sizes=(50,),
                                 methods=("obliv",))

        monkeypatch.setitem(cli.ALL_FIGURES, "fig3a", tiny_fig3a)
        assert cli_main(
            ["run", "fig3a", "--scale", "0.05", "--out", str(tmp_path)]
        ) == 0
        assert (tmp_path / "fig3a.txt").exists()
        out = capsys.readouterr().out
        assert "Figure 3(a)" in out

    def test_run_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "nope"])


class TestExamples:
    """Each example must run end to end (subprocess, real entry point)."""

    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "hierarchy_drilldown.py"],
    )
    def test_fast_examples_run(self, script):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / script)],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip()

    def test_quickstart_outputs_estimates(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert "aware" in result.stdout
        assert "exact" in result.stdout

    def test_hierarchy_drilldown_validates_theorem(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "hierarchy_drilldown.py")],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert "theorem: < 1" in result.stdout

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "script",
        [
            "network_traffic_analysis.py",
            "stream_summarization.py",
            "confidence_intervals.py",
            "sharded_engine.py",
            "streaming_dashboard.py",
        ],
    )
    def test_slow_examples_run(self, script):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / script)],
            capture_output=True,
            text=True,
            timeout=900,
        )
        assert result.returncode == 0, result.stderr
