"""Tests for the synthetic data and query generators."""

import numpy as np
import pytest

from repro.core.types import Dataset
from repro.datagen.distributions import (
    pareto_weights,
    with_heavy_head,
    zipf_choice,
    zipf_popularities,
)
from repro.datagen.network import NetworkConfig, generate_network_flows
from repro.datagen.queries import (
    equal_weight_cells,
    uniform_area_queries,
    uniform_weight_queries,
)
from repro.datagen.tickets import TicketConfig, clustered_leaves, generate_tickets
from repro.structures.hierarchy import ExplicitHierarchy, hierarchy_entropy


class TestDistributions:
    def test_pareto_positive_and_heavy(self):
        w = pareto_weights(20_000, alpha=1.2, rng=np.random.default_rng(0))
        assert (w >= 1.0).all()
        # Heavy tail: the max dwarfs the median.
        assert w.max() > 20 * np.median(w)

    def test_pareto_validation(self):
        with pytest.raises(ValueError):
            pareto_weights(-1)
        with pytest.raises(ValueError):
            pareto_weights(10, alpha=0)

    def test_zipf_popularities_normalized_and_sorted(self):
        p = zipf_popularities(50, 1.0)
        assert p.sum() == pytest.approx(1.0)
        assert (np.diff(p) <= 0).all()

    def test_zipf_exponent_zero_uniform(self):
        p = zipf_popularities(10, 0.0)
        np.testing.assert_allclose(p, 0.1)

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_popularities(0)
        with pytest.raises(ValueError):
            zipf_popularities(5, -1)

    def test_zipf_choice_skews_to_head(self):
        draws = zipf_choice(100, 5000, 1.2, np.random.default_rng(0))
        head = (draws < 10).mean()
        assert head > 0.4

    def test_with_heavy_head(self):
        rng = np.random.default_rng(1)
        base = np.ones(1000)
        out = with_heavy_head(base, 0.01, 100.0, rng)
        assert (out == 100.0).sum() == 10
        assert (out == 1.0).sum() == 990
        with pytest.raises(ValueError):
            with_heavy_head(base, 1.5, 2.0, rng)


class TestNetworkGenerator:
    def test_shape_and_domain(self, network_small):
        assert network_small.dims == 2
        assert network_small.n > 1000
        assert network_small.domain.is_hierarchical(0)
        assert network_small.domain.is_hierarchical(1)

    def test_deterministic_given_seed(self):
        config = NetworkConfig(n_pairs=500, n_sources=200, n_dests=200,
                               bits=16, min_prefix=4, max_prefix=10)
        a = generate_network_flows(config, seed=5)
        b = generate_network_flows(config, seed=5)
        np.testing.assert_array_equal(a.coords, b.coords)
        np.testing.assert_allclose(a.weights, b.weights)

    def test_distinct_seeds_differ(self):
        config = NetworkConfig(n_pairs=500, n_sources=200, n_dests=200,
                               bits=16, min_prefix=4, max_prefix=10)
        a = generate_network_flows(config, seed=5)
        b = generate_network_flows(config, seed=6)
        assert a.coords.shape != b.coords.shape or not np.array_equal(
            a.coords, b.coords
        )

    def test_no_duplicate_keys(self, network_small):
        assert np.unique(network_small.coords, axis=0).shape[0] == network_small.n

    def test_addresses_clustered(self, network_small):
        # Clustered addresses have lower prefix entropy than uniform.
        h = network_small.domain.hierarchy(0)
        observed = hierarchy_entropy(
            h, network_small.coords[:, 0], network_small.weights, depth=8
        )
        rng = np.random.default_rng(0)
        uniform_keys = rng.integers(0, h.num_leaves, size=network_small.n)
        uniform = hierarchy_entropy(
            h, uniform_keys, network_small.weights, depth=8
        )
        assert observed < uniform - 0.5

    def test_weights_heavy_tailed(self, network_small):
        w = network_small.weights
        assert w.max() > 10 * np.median(w)


class TestTicketGenerator:
    def test_shape_and_domain(self, tickets_small):
        assert tickets_small.dims == 2
        assert tickets_small.domain.is_hierarchical(0)

    def test_heavy_head_present(self, tickets_small):
        # "many high weight keys": the top 2% carry a large share.
        w = np.sort(tickets_small.weights)[::-1]
        top = w[: max(1, len(w) // 50)].sum()
        assert top / w.sum() > 0.3

    def test_clustered_leaves_skewed(self):
        h = ExplicitHierarchy((8, 8, 8))
        rng = np.random.default_rng(0)
        leaves = clustered_leaves(h, 5000, 1.2, rng)
        assert leaves.min() >= 0 and leaves.max() < h.num_leaves
        top_nodes = h.node_of(leaves, 1)
        counts = np.bincount(top_nodes, minlength=8)
        assert counts.max() > 2 * counts.mean()

    def test_deterministic_given_seed(self):
        config = TicketConfig(n_combinations=400)
        a = generate_tickets(config, seed=3)
        b = generate_tickets(config, seed=3)
        np.testing.assert_array_equal(a.coords, b.coords)


class TestQueryGenerators:
    def test_uniform_area_counts(self, network_small):
        rng = np.random.default_rng(0)
        queries = uniform_area_queries(
            network_small.domain, 10, 5, max_fraction=0.1, rng=rng
        )
        assert len(queries) == 10
        assert all(q.num_ranges == 5 for q in queries)

    def test_uniform_area_disjoint(self, network_small):
        rng = np.random.default_rng(1)
        queries = uniform_area_queries(
            network_small.domain, 5, 8, max_fraction=0.1, rng=rng
        )
        for q in queries:
            boxes = q.boxes
            for i, a in enumerate(boxes):
                for b in boxes[i + 1:]:
                    assert not a.intersects(b)

    def test_uniform_area_impossible_raises(self):
        from repro.structures.product import line_domain

        rng = np.random.default_rng(2)
        with pytest.raises(RuntimeError):
            # 50 disjoint rects covering ~90% each cannot fit.
            uniform_area_queries(
                line_domain(100), 1, 50, max_fraction=0.9, rng=rng,
                max_tries=5,
            )

    def test_equal_weight_cells_are_balanced(self, network_small):
        cells = equal_weight_cells(network_small, 64)
        from repro.summaries.exact import ExactSummary

        exact = ExactSummary(network_small)
        weights = np.array([exact.query(c) for c in cells])
        weights = weights[weights > 0]
        target = network_small.total_weight / 64
        # Most cells within 4x of the target mass.
        assert np.median(weights) < 4 * target

    def test_uniform_weight_queries_distinct_cells(self, network_small):
        rng = np.random.default_rng(3)
        queries = uniform_weight_queries(network_small, 6, 4, 64, rng=rng)
        assert len(queries) == 6
        for q in queries:
            assert q.num_ranges == 4

    def test_uniform_weight_too_few_cells(self, network_small):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            uniform_weight_queries(network_small, 2, 50, 4, rng=rng)
