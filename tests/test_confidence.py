"""Tests for HT variance bounds and tail-bound confidence intervals."""

import numpy as np
import pytest

from repro.core.estimator import SampleSummary
from repro.core.types import Dataset
from repro.core.varopt import varopt_summary
from repro.structures.ranges import interval


def make_data(seed=0, n=200, size=10_000):
    rng = np.random.default_rng(seed)
    keys = rng.choice(size, size=n, replace=False)
    weights = 1.0 + rng.pareto(1.2, size=n)
    return Dataset.one_dimensional(keys, weights, size=size)


class TestVarianceBound:
    def test_zero_when_tau_zero(self):
        s = SampleSummary(np.array([[1]]), np.array([2.0]), tau=0.0)
        assert s.variance_upper_bound(interval(0, 10)) == 0.0

    def test_zero_for_heavy_only_region(self):
        s = SampleSummary(
            np.array([[1], [9]]), np.array([10.0, 1.0]), tau=4.0
        )
        assert s.variance_upper_bound(interval(0, 5)) == 0.0
        assert s.variance_upper_bound(interval(6, 10)) > 0.0

    def test_bound_dominates_empirical_variance(self):
        data = make_data()
        box = interval(0, 5000)
        truth_box = data.weights[data.coords[:, 0] <= 5000].sum()
        estimates = []
        bounds = []
        for t in range(800):
            summary = varopt_summary(data, 30, np.random.default_rng(t))
            estimates.append(summary.query(box))
            bounds.append(summary.variance_upper_bound(box))
        empirical_var = float(np.var(estimates))
        # The mean plug-in bound should be of the right scale: at least
        # half the empirical variance (it is unbiased in expectation for
        # Poisson and conservative for VarOpt).
        assert np.mean(bounds) > 0.3 * empirical_var


class TestConfidenceInterval:
    def test_validation(self):
        s = SampleSummary(np.array([[1]]), np.array([2.0]), tau=1.0)
        with pytest.raises(ValueError):
            s.confidence_interval(interval(0, 5), delta=0.0)

    def test_degenerate_when_exact(self):
        s = SampleSummary(np.array([[1]]), np.array([2.0]), tau=0.0)
        lo, hi = s.confidence_interval(interval(0, 5))
        assert lo == hi

    def test_contains_estimate(self):
        data = make_data(1)
        summary = varopt_summary(data, 30, np.random.default_rng(0))
        box = interval(0, 5000)
        lo, hi = summary.confidence_interval(box, delta=0.1)
        est = summary.query(box)
        assert lo - 1e-9 <= est <= hi + 1e-9

    def test_coverage_at_least_nominal(self):
        # Conservative interval: empirical coverage >= 1 - delta.
        data = make_data(2)
        box = interval(0, 5000)
        truth = data.weights[data.coords[:, 0] <= 5000].sum()
        hits = 0
        trials = 300
        for t in range(trials):
            summary = varopt_summary(data, 40, np.random.default_rng(t))
            lo, hi = summary.confidence_interval(box, delta=0.1)
            if lo - 1e-9 <= truth <= hi + 1e-9:
                hits += 1
        assert hits / trials >= 0.9

    def test_width_shrinks_with_sample_size(self):
        data = make_data(3, n=400)
        box = interval(0, 5000)
        widths = []
        for s in (20, 200):
            summary = varopt_summary(data, s, np.random.default_rng(1))
            lo, hi = summary.confidence_interval(box, delta=0.1)
            widths.append(hi - lo)
        assert widths[1] < widths[0]

    def test_zero_estimate_interval(self):
        # No light samples in the box: lower bound 0, finite upper.
        s = SampleSummary(
            np.array([[100]]), np.array([1.0]), tau=5.0
        )
        lo, hi = s.confidence_interval(interval(0, 50), delta=0.1)
        assert lo == 0.0
        assert hi > 0.0
