"""Tests for IPPS probabilities and threshold computation (Algorithm 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ipps import (
    StreamingThreshold,
    heavy_key_mask,
    ipps_probabilities,
    ipps_threshold,
)

weight_lists = st.lists(
    st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=120,
)


class TestOfflineThreshold:
    def test_rejects_nonpositive_s(self):
        with pytest.raises(ValueError):
            ipps_threshold(np.array([1.0]), 0)

    def test_uniform_weights(self):
        w = np.ones(100)
        tau = ipps_threshold(w, 10)
        # sum min(1, 1/tau) = 100/tau = 10 -> tau = 10.
        assert tau == pytest.approx(10.0)

    def test_sum_of_probabilities_equals_s(self):
        rng = np.random.default_rng(0)
        w = 1.0 + rng.pareto(1.1, size=500)
        for s in (3, 10, 50, 200, 499):
            p, tau = ipps_probabilities(w, s)
            assert p.sum() == pytest.approx(s, rel=1e-9)
            assert tau > 0

    def test_s_at_least_n_includes_all(self):
        w = np.array([1.0, 2.0, 3.0])
        p, tau = ipps_probabilities(w, 3)
        assert tau == 0.0
        np.testing.assert_array_equal(p, np.ones(3))

    def test_zero_weights_excluded(self):
        w = np.array([0.0, 5.0, 0.0, 5.0])
        p, tau = ipps_probabilities(w, 1)
        assert p[0] == 0.0 and p[2] == 0.0
        assert p.sum() == pytest.approx(1.0)

    def test_heavy_keys_probability_one(self):
        w = np.array([1000.0, 1.0, 1.0, 1.0, 1.0])
        p, tau = ipps_probabilities(w, 2)
        assert p[0] == 1.0
        # Remaining 4 unit weights share the one remaining slot.
        assert p[1:].sum() == pytest.approx(1.0)

    def test_all_heavy_when_s_equals_n_minus_epsilon(self):
        w = np.array([10.0, 10.0, 10.0])
        p, tau = ipps_probabilities(w, 2.5)
        assert p.sum() == pytest.approx(2.5)

    @given(weight_lists, st.integers(1, 40))
    @settings(max_examples=80, deadline=None)
    def test_threshold_solves_equation(self, weights, s):
        w = np.asarray(weights)
        p, tau = ipps_probabilities(w, s)
        expect = min(s, np.count_nonzero(w > 0))
        assert p.sum() == pytest.approx(expect, rel=1e-6)
        assert ((p >= 0) & (p <= 1)).all()


class TestHeavyMask:
    def test_matches_probability_one(self):
        rng = np.random.default_rng(5)
        w = 1.0 + rng.pareto(1.0, size=300)
        p, tau = ipps_probabilities(w, 30)
        mask = heavy_key_mask(w, tau)
        np.testing.assert_array_equal(mask, p >= 1.0 - 1e-9)

    def test_tau_zero_means_all_positive(self):
        w = np.array([0.0, 1.0, 2.0])
        np.testing.assert_array_equal(
            heavy_key_mask(w, 0.0), [False, True, True]
        )


class TestStreamingThreshold:
    def test_matches_offline_on_random_streams(self):
        rng = np.random.default_rng(1)
        for trial in range(5):
            w = 1.0 + rng.pareto(1.2, size=400)
            s = int(rng.integers(5, 100))
            stream = StreamingThreshold(s)
            stream.update_many(w)
            assert stream.tau == pytest.approx(
                ipps_threshold(w, s), rel=1e-9
            )

    def test_order_invariance(self):
        rng = np.random.default_rng(2)
        w = 1.0 + rng.pareto(1.0, size=200)
        s = 20
        forward = StreamingThreshold(s)
        forward.update_many(w)
        backward = StreamingThreshold(s)
        backward.update_many(w[::-1])
        assert forward.tau == pytest.approx(backward.tau, rel=1e-9)

    def test_tau_zero_until_s_items(self):
        stream = StreamingThreshold(5)
        for w in [3.0, 1.0, 2.0, 5.0, 4.0]:
            stream.update(w)
            assert stream.tau == 0.0
        stream.update(1.0)
        assert stream.tau > 0.0

    def test_ignores_zero_weights(self):
        stream = StreamingThreshold(2)
        stream.update_many(np.array([1.0, 0.0, 1.0, 0.0, 1.0]))
        assert stream.count == 3
        assert stream.tau == pytest.approx(ipps_threshold(np.ones(3), 2))

    def test_rejects_negative_weight(self):
        stream = StreamingThreshold(2)
        with pytest.raises(ValueError):
            stream.update(-1.0)

    def test_rejects_nonpositive_s(self):
        with pytest.raises(ValueError):
            StreamingThreshold(0)

    @given(weight_lists, st.integers(1, 25))
    @settings(max_examples=60, deadline=None)
    def test_streaming_equals_offline(self, weights, s):
        stream = StreamingThreshold(s)
        stream.update_many(np.asarray(weights))
        offline = ipps_threshold(np.asarray(weights), s)
        assert stream.tau == pytest.approx(offline, rel=1e-6, abs=1e-12)
