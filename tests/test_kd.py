"""Tests for KD-HIERARCHY (Algorithm 2)."""

import numpy as np
import pytest

from repro.aware.kd import (
    build_kd_hierarchy,
    kd_cell_ids,
    kd_depth,
    kd_leaf_boxes,
    kd_leaves,
)
from repro.structures.hierarchy import BitHierarchy
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain


def make_points(seed, n=200, size=1024):
    rng = np.random.default_rng(seed)
    coords = rng.integers(0, size, size=(n, 2))
    masses = rng.random(n)
    return coords, masses


class TestBuild:
    def test_leaf_masses_bounded(self):
        coords, masses = make_points(0)
        root = build_kd_hierarchy(coords, masses, leaf_mass=1.0)
        for leaf in kd_leaves(root):
            # Leaves either have unit mass or could not be split further.
            assert leaf.mass <= 1.0 + 1e-9 or leaf.indices.size == 1

    def test_every_point_in_exactly_one_leaf(self):
        coords, masses = make_points(1)
        root = build_kd_hierarchy(coords, masses)
        seen = np.concatenate([leaf.indices for leaf in kd_leaves(root)])
        assert sorted(seen.tolist()) == list(range(len(coords)))

    def test_cell_ids_consecutive(self):
        coords, masses = make_points(2)
        root = build_kd_hierarchy(coords, masses)
        leaves = kd_leaves(root)
        assert [leaf.cell_id for leaf in leaves] == list(range(len(leaves)))

    def test_mass_conservation(self):
        coords, masses = make_points(3)
        root = build_kd_hierarchy(coords, masses)
        total = sum(leaf.mass for leaf in kd_leaves(root))
        assert total == pytest.approx(masses.sum())

    def test_balance_of_median_split(self):
        # With continuous-ish masses the root split should be near 50/50.
        coords, masses = make_points(4, n=500)
        root = build_kd_hierarchy(coords, masses, leaf_mass=masses.sum() / 2)
        assert not root.is_leaf
        ratio = root.left.mass / (root.left.mass + root.right.mass)
        assert 0.3 < ratio < 0.7

    def test_depth_logarithmic(self):
        coords, masses = make_points(5, n=512)
        masses = np.full(512, 0.5)
        root = build_kd_hierarchy(coords, masses, leaf_mass=1.0)
        # 256 unit cells: depth should be close to log2(256)=8, far from n.
        assert kd_depth(root) <= 2 * 8 + 4

    def test_duplicate_points_become_leaf(self):
        coords = np.tile(np.array([[7, 9]]), (20, 1))
        masses = np.full(20, 0.4)
        root = build_kd_hierarchy(coords, masses, leaf_mass=1.0)
        leaves = kd_leaves(root)
        assert len(leaves) == 1
        assert leaves[0].mass == pytest.approx(8.0)

    def test_single_point(self):
        root = build_kd_hierarchy(np.array([[3, 4]]), np.array([0.5]))
        assert root.is_leaf
        assert root.cell_id == 0

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            build_kd_hierarchy(np.zeros((3, 2)), np.zeros(2))

    def test_unknown_split_rule(self):
        with pytest.raises(ValueError):
            build_kd_hierarchy(np.zeros((3, 2)), np.ones(3), split_rule="x")

    def test_midpoint_requires_domain(self):
        with pytest.raises(ValueError):
            build_kd_hierarchy(
                np.zeros((3, 2)), np.ones(3), split_rule="midpoint"
            )


class TestBoxes:
    def domain(self, size=1024):
        return ProductDomain([OrderedDomain(size), OrderedDomain(size)])

    def test_leaf_boxes_partition_domain(self):
        coords, masses = make_points(6, n=300)
        root = build_kd_hierarchy(coords, masses, domain=self.domain())
        boxes = kd_leaf_boxes(root)
        volume = sum(box.volume for box in boxes)
        assert volume == 1024 * 1024
        for i, a in enumerate(boxes):
            for b in boxes[i + 1:]:
                assert not a.intersects(b)

    def test_boxes_contain_their_points(self):
        coords, masses = make_points(7, n=200)
        root = build_kd_hierarchy(coords, masses, domain=self.domain())
        for leaf in kd_leaves(root):
            for idx in leaf.indices:
                assert leaf.box.contains_point(coords[idx])

    def test_leaf_boxes_without_domain_raises(self):
        coords, masses = make_points(8, n=50)
        root = build_kd_hierarchy(coords, masses)
        if not root.is_leaf:
            with pytest.raises(ValueError):
                kd_leaf_boxes(root)

    def test_midpoint_rule_produces_dyadic_cuts(self):
        coords, masses = make_points(9, n=200)
        root = build_kd_hierarchy(
            coords, masses, domain=self.domain(), split_rule="midpoint"
        )
        # Walk the tree: every split value must be the midpoint of its box.
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            lo, hi = node.box.side(node.axis)
            assert node.split_value == lo + ((hi - lo) >> 1)
            stack.extend([node.left, node.right])


class TestLocate:
    def test_locate_matches_membership(self):
        coords, masses = make_points(10, n=300)
        domain = ProductDomain([OrderedDomain(1024), OrderedDomain(1024)])
        root = build_kd_hierarchy(coords, masses, domain=domain)
        rng = np.random.default_rng(0)
        probes = rng.integers(0, 1024, size=(100, 2))
        for point in probes:
            leaf = root.locate(point)
            assert leaf.box.contains_point(point)

    def test_kd_cell_ids_batch(self):
        coords, masses = make_points(11, n=150)
        root = build_kd_hierarchy(coords, masses)
        ids = kd_cell_ids(root, coords)
        for i, leaf_id in enumerate(ids):
            assert root.locate(coords[i]).cell_id == leaf_id

    def test_points_locate_to_their_leaf(self):
        coords, masses = make_points(12, n=150)
        root = build_kd_hierarchy(coords, masses)
        for leaf in kd_leaves(root):
            for idx in leaf.indices:
                assert root.locate(coords[idx]).cell_id == leaf.cell_id


class TestHierarchicalAxes:
    def test_hierarchy_axis_splits_respect_linearization(self):
        # Hierarchy axes split along the leaf numbering (the DFS
        # linearization), so the tree builds without error and cells
        # remain aligned intervals of leaves per axis.
        rng = np.random.default_rng(13)
        domain = ProductDomain([BitHierarchy(10), BitHierarchy(10)])
        coords = rng.integers(0, 1024, size=(200, 2))
        masses = rng.random(200)
        root = build_kd_hierarchy(coords, masses, domain=domain)
        boxes = kd_leaf_boxes(root)
        assert sum(box.volume for box in boxes) == 1024 * 1024
