"""Cross-module integration tests: the paper's end-to-end claims."""

import numpy as np
import pytest

from repro.core.discrepancy import multirange_discrepancy
from repro.core.ipps import ipps_probabilities
from repro.core.poisson import poisson_sample
from repro.core.varopt import varopt_sample
from repro.datagen.queries import uniform_weight_queries
from repro.experiments.harness import build_summary, ground_truths
from repro.structures.hierarchy import BitHierarchy
from repro.structures.ranges import Box, MultiRangeQuery
from repro.aware.hierarchy_sampler import hierarchy_aware_sample
from repro.twopass.two_pass import two_pass_summary


class TestVarOptBeatsPoissonVariance:
    """Appendix A: VarOpt subset variance <= Poisson IPPS variance."""

    def test_total_estimate_variance(self):
        rng0 = np.random.default_rng(0)
        w = 1.0 + rng0.pareto(1.1, size=120)
        s = 15
        p, tau = ipps_probabilities(w, s)
        varopt_est, poisson_est = [], []
        for t in range(3000):
            inc_v, _ = varopt_sample(w, s, np.random.default_rng(t))
            adj = np.maximum(w[inc_v], tau)
            varopt_est.append(adj.sum())
            inc_p, _ = poisson_sample(w, s, np.random.default_rng(t + 10**6))
            adj_p = np.maximum(w[inc_p], tau)
            poisson_est.append(adj_p.sum())
        # VarOpt's total estimate has (near) zero variance; Poisson's
        # does not.
        assert np.var(varopt_est) < 0.1 * np.var(poisson_est)


class TestMultiRangeClaims:
    """Lemma 4 / Appendix C: multi-range discrepancy for hierarchies."""

    def test_hierarchy_multirange_discrepancy_at_most_num_ranges(self):
        h = BitHierarchy(10)
        rng0 = np.random.default_rng(1)
        n = 400
        keys = rng0.choice(h.num_leaves, size=n, replace=False)
        weights = 1.0 + rng0.pareto(1.2, size=n)
        # A query spanning 6 disjoint depth-3 nodes.
        nodes = [0, 1, 3, 4, 6, 7]
        boxes = []
        for node in nodes:
            lo, hi = h.node_interval(3, node)
            boxes.append(Box((lo,), (hi - 1,)))
        query = MultiRangeQuery(boxes)
        for t in range(40):
            included, tau, probs = hierarchy_aware_sample(
                keys, weights, 30, h, np.random.default_rng(t)
            )
            mask = np.zeros(n, bool)
            mask[included] = True
            coords = keys.reshape(-1, 1)
            delta = multirange_discrepancy(coords, probs, mask, query)
            assert delta <= len(nodes) + 1e-9

    def test_hierarchy_multirange_concentrates_below_linear(self):
        # The *average* multi-range discrepancy behaves like sqrt(L),
        # far below the worst-case L.
        h = BitHierarchy(10)
        rng0 = np.random.default_rng(2)
        n = 600
        keys = rng0.choice(h.num_leaves, size=n, replace=False)
        weights = 1.0 + rng0.pareto(1.2, size=n)
        nodes = list(range(0, 16, 2))  # 8 disjoint depth-4 nodes
        boxes = []
        for node in nodes:
            lo, hi = h.node_interval(4, node)
            boxes.append(Box((lo,), (hi - 1,)))
        query = MultiRangeQuery(boxes)
        deltas = []
        for t in range(60):
            included, tau, probs = hierarchy_aware_sample(
                keys, weights, 50, h, np.random.default_rng(t)
            )
            mask = np.zeros(n, bool)
            mask[included] = True
            deltas.append(
                multirange_discrepancy(
                    keys.reshape(-1, 1), probs, mask, query
                )
            )
        assert np.mean(deltas) < np.sqrt(len(nodes)) + 1.0


class TestAwareBeatsObliviousEndToEnd:
    """Section 6 headline: aware halves the error on range workloads."""

    def test_uniform_weight_queries_network(self, network_small):
        rng = np.random.default_rng(3)
        queries = uniform_weight_queries(network_small, 25, 5, 100, rng=rng)
        truths = ground_truths(network_small, queries)
        total = network_small.total_weight
        aware_err, obliv_err = [], []
        for t in range(6):
            aware, _ = build_summary(
                "aware", network_small, 300, np.random.default_rng(t)
            )
            obliv, _ = build_summary(
                "obliv", network_small, 300, np.random.default_rng(t)
            )
            aware_err.append(
                np.abs(np.asarray(aware.query_many(queries)) - truths).mean()
                / total
            )
            obliv_err.append(
                np.abs(np.asarray(obliv.query_many(queries)) - truths).mean()
                / total
            )
        assert np.mean(aware_err) < np.mean(obliv_err)


class TestTwoPassMatchesMainMemory:
    """Section 5: the two-pass sampler matches the main-memory variant."""

    def test_comparable_box_error(self, grid_dataset):
        from repro.aware.product_sampler import product_aware_summary

        box = Box((0, 0), (511, 511))
        mask = box.contains(grid_dataset.coords)
        truth = grid_dataset.weights[mask].sum()
        two_pass_errors, main_memory_errors = [], []
        for t in range(40):
            tp = two_pass_summary(
                grid_dataset, 60, np.random.default_rng(t)
            )
            mm = product_aware_summary(
                grid_dataset, 60, np.random.default_rng(t + 10**6)
            )
            two_pass_errors.append(abs(tp.query(box) - truth))
            main_memory_errors.append(abs(mm.query(box) - truth))
        # Same order of magnitude (within 3x on the mean).
        ratio = (np.mean(two_pass_errors) + 1e-9) / (
            np.mean(main_memory_errors) + 1e-9
        )
        assert 1 / 4 < ratio < 4

    def test_disjoint_partition_two_pass(self, rng):
        from repro.core.types import Dataset

        rng0 = np.random.default_rng(7)
        n = 300
        keys = rng0.choice(10_000, size=n, replace=False)
        weights = 1.0 + rng0.pareto(1.2, size=n)
        data = Dataset.one_dimensional(keys, weights, size=10_000)
        labeler = lambda key: key[0] // 500  # 20 flat ranges
        summary = two_pass_summary(
            data, 30, rng, partition="disjoint", labeler=labeler
        )
        assert abs(summary.size - 30) <= 1

    def test_disjoint_requires_labeler(self, rng):
        from repro.twopass.two_pass import TwoPassSampler

        with pytest.raises(ValueError):
            TwoPassSampler(10, rng, partition="disjoint")


class TestRepresentativeSamples:
    """Section 1: samples provide representative keys; dedicated
    summaries do not (their API has no such concept)."""

    def test_representatives_come_from_data(self, network_small):
        rng = np.random.default_rng(5)
        summary = two_pass_summary(network_small, 200, rng)
        box = network_small.domain.full_box()
        reps = summary.representatives(box, k=10)
        data_keys = set(map(tuple, network_small.coords))
        for row in reps:
            assert tuple(row) in data_keys
