"""Streaming engine: streaming-vs-batch equivalence and reproducibility.

The statistical contract mirrors the sharded engine's (panes are
time-shards): feeding a whole dataset as micro-batches must give
*identical* answers for the deterministic summaries (exact, q-digest,
sketch) and statistically *unbiased* answers for sampling -- checked
with the 50-seed harness style of ``tests/test_engine_merge.py``.
"""

import numpy as np
import pytest

from repro.datagen import (
    generate_bursty_series,
    stream_bursty_series,
)
from repro.engine import registry
from repro.stream import MicroBatch, StreamEngine, sliding, tumbling
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box
from repro.summaries.exact import ExactSummary
from repro.summaries.qdigest import QDigestSummary
from repro.summaries.qdigest_stream import StreamingQDigest


def skewed_dataset(n=2000, seed=5, dims=2):
    rng = np.random.default_rng(seed)
    size = 1 << 16
    coords = rng.integers(0, size, size=(n, dims))
    weights = 1.0 + rng.pareto(1.4, size=n)
    domain = ProductDomain([OrderedDomain(size) for _ in range(dims)])
    from repro.core.types import Dataset

    return Dataset(coords=coords, weights=weights, domain=domain)


def feed_in_batches(engine, data, batch_size=250):
    for start in range(0, data.n, batch_size):
        stop = min(start + batch_size, data.n)
        engine.process((data.coords[start:stop], data.weights[start:stop]))


QUERY_BOXES = [
    Box((0, 0), ((1 << 15) - 1, (1 << 16) - 1)),
    Box((1 << 14, 1 << 14), ((1 << 16) - 1, (1 << 15) - 1)),
    Box((0, 0), ((1 << 16) - 1, (1 << 16) - 1)),
]


class TestStreamingVsBatchEquivalence:
    def test_exact_identical_to_batch(self):
        data = skewed_dataset()
        engine = StreamEngine(data.domain, "exact", 100, seed=0)
        feed_in_batches(engine, data)
        batch = ExactSummary(data)
        streamed = engine.query_many_now(QUERY_BOXES)["exact"]
        assert streamed == pytest.approx(batch.query_many(QUERY_BOXES))
        assert engine.items_seen == data.n

    def test_qdigest_identical_to_batch(self):
        """The buffered-rebuild path reproduces the batch q-digest."""
        data = skewed_dataset(n=1200)
        engine = StreamEngine(data.domain, "qdigest", 60, seed=3)
        feed_in_batches(engine, data)
        batch = QDigestSummary(data, 60)
        streamed = engine.query_many_now(QUERY_BOXES)["qdigest"]
        assert streamed == pytest.approx(batch.query_many(QUERY_BOXES))

    def test_qdigest_stream_identical_to_direct_insertion(self):
        data = skewed_dataset(n=1500, dims=1)
        engine = StreamEngine(data.domain, "qdigest-stream", 320, seed=1)
        feed_in_batches(engine, data)
        snap = engine.snapshot("qdigest-stream")
        direct = registry.build(
            "qdigest-stream", data, 320, np.random.default_rng(0)
        )
        # ``snapshot`` compresses the frozen copy; align the reference.
        direct.compress()
        lo, hi = 1000, 40_000
        assert snap.size == direct.size
        assert snap.range_sum(lo, hi) == pytest.approx(
            direct.range_sum(lo, hi)
        )
        assert snap.total == pytest.approx(data.total_weight)

    def test_sketch_identical_to_batch(self):
        """Linear tables + shared hashes: streamed == monolithic."""
        data = skewed_dataset(n=800)
        engine = StreamEngine(data.domain, "sketch", 512, seed=9)
        feed_in_batches(engine, data, batch_size=100)
        batch = registry.build("sketch", data, 512, np.random.default_rng(0))
        streamed = engine.query_many_now(QUERY_BOXES)["sketch"]
        assert streamed == pytest.approx(batch.query_many(QUERY_BOXES))

    def test_sample_unbiased_over_seeds(self):
        """Streamed VarOpt box estimates are unbiased (50 seeds)."""
        data = skewed_dataset()
        box = QUERY_BOXES[0]
        truth = float(data.weights[box.contains(data.coords)].sum())
        estimates = []
        for seed in range(50):
            engine = StreamEngine(data.domain, "obliv", 120, seed=seed)
            feed_in_batches(engine, data)
            estimates.append(engine.query_now(box)["obliv"])
        estimates = np.asarray(estimates)
        sem = estimates.std(ddof=1) / np.sqrt(len(estimates))
        assert abs(estimates.mean() - truth) <= 3.5 * sem

    def test_windowed_sample_unbiased_over_seeds(self):
        """Pane folds keep HT unbiasedness: obliv tracks windowed exact."""
        data = skewed_dataset(n=1500, dims=1)
        order = np.argsort(data.coords[:, 0], kind="stable")
        coords, weights = data.coords[order], data.weights[order]
        window = sliding(width=1 << 14, slide=1 << 12)

        def feed(engine):
            # Pane-aligned batches: slice the time axis every `slide`.
            keys = coords[:, 0]
            for pane_start in range(0, 1 << 16, 1 << 12):
                lo = np.searchsorted(keys, pane_start, side="left")
                hi = np.searchsorted(keys, pane_start + (1 << 12) - 1,
                                     side="right")
                if hi > lo:
                    engine.process(MicroBatch(
                        coords[lo:hi], weights[lo:hi],
                        timestamp=float(keys[hi - 1]),
                    ))

        box = Box((1 << 13,), ((1 << 16) - 1,))
        estimates, truths = [], []
        for seed in range(50):
            engine = StreamEngine(
                data.domain, ["exact", "obliv"], 100,
                window=window, seed=seed,
            )
            feed(engine)
            live = engine.query_now(box)
            estimates.append(live["obliv"])
            truths.append(live["exact"])
        estimates = np.asarray(estimates)
        truth = truths[0]
        # The exact windowed answer is seed-independent...
        assert truths == pytest.approx([truth] * len(truths))
        # ...and covers only the window, not the whole stream.
        assert truth < float(weights.sum())
        sem = max(estimates.std(ddof=1) / np.sqrt(len(estimates)), 1e-9)
        assert abs(estimates.mean() - truth) <= 3.5 * sem + 1e-6 * truth


class TestReproducibility:
    def test_same_seed_same_answers(self):
        """Two engines from one seed and one stream are identical."""
        data = skewed_dataset(n=1000)
        snaps = []
        for _ in range(2):
            engine = StreamEngine(
                data.domain, ["obliv", "exact"], 150, seed=42
            )
            feed_in_batches(engine, data)
            snaps.append(engine.snapshot("obliv"))
        a, b = snaps
        np.testing.assert_array_equal(a.coords, b.coords)
        np.testing.assert_array_equal(a.weights, b.weights)
        assert a.tau == b.tau

    def test_same_seed_same_answers_windowed(self):
        """Per-pane seed derivation reproduces across engines."""
        data = skewed_dataset(n=1200, dims=1)
        order = np.argsort(data.coords[:, 0], kind="stable")
        coords, weights = data.coords[order], data.weights[order]

        def build():
            engine = StreamEngine(
                data.domain, "obliv", 80,
                window=sliding(width=1 << 15, slide=1 << 13), seed=7,
            )
            for start in range(0, coords.shape[0], 150):
                stop = min(start + 150, coords.shape[0])
                engine.process(MicroBatch(
                    coords[start:stop], weights[start:stop],
                    timestamp=float(coords[stop - 1, 0]),
                ))
            return engine.snapshot("obliv")

        a, b = build(), build()
        np.testing.assert_array_equal(a.coords, b.coords)
        assert a.tau == b.tau

    def test_different_seeds_differ(self):
        data = skewed_dataset(n=1000)

        def build(seed):
            engine = StreamEngine(data.domain, "obliv", 150, seed=seed)
            feed_in_batches(engine, data)
            return engine.snapshot("obliv")

        a, b = build(1), build(2)
        assert not np.array_equal(a.coords, b.coords)


class TestWindows:
    def one_d_domain(self, size=1 << 10):
        return ProductDomain([OrderedDomain(size)])

    def batch_at(self, t, keys=(1, 2, 3), w=1.0):
        coords = np.asarray(keys, dtype=np.int64).reshape(-1, 1)
        return MicroBatch(coords, np.full(len(keys), w), timestamp=float(t))

    def test_tumbling_resets_and_exposes_last_window(self):
        engine = StreamEngine(
            self.one_d_domain(), "exact", 50, window=tumbling(10.0)
        )
        whole = Box((0,), ((1 << 10) - 1,))
        engine.process(self.batch_at(1.0))
        engine.process(self.batch_at(5.0))
        assert engine.query_now(whole)["exact"] == pytest.approx(6.0)
        assert engine.last_window() is None
        engine.process(self.batch_at(12.0))
        # The new window only holds the last batch...
        assert engine.query_now(whole)["exact"] == pytest.approx(3.0)
        # ...and the completed one is frozen.
        last = engine.last_window()["exact"]
        assert last.query(whole) == pytest.approx(6.0)
        assert engine.num_panes == 1

    def test_last_window_none_after_stream_gap(self):
        """A stale pane must not pose as the latest completed window."""
        engine = StreamEngine(
            self.one_d_domain(), "exact", 50, window=tumbling(10.0)
        )
        engine.process(self.batch_at(5.0))
        engine.process(self.batch_at(95.0))
        # Windows [10,20)...[80,90) completed empty: no last window.
        assert engine.last_window() is None
        engine.process(self.batch_at(105.0))
        whole = Box((0,), ((1 << 10) - 1,))
        assert engine.last_window()["exact"].query(whole) == pytest.approx(3.0)

    def test_sliding_window_forgets_old_panes(self):
        engine = StreamEngine(
            self.one_d_domain(), "exact", 50,
            window=sliding(width=4.0, slide=2.0),
        )
        whole = Box((0,), ((1 << 10) - 1,))
        for t in (0.0, 2.0, 4.0, 6.0, 8.0):
            engine.process(self.batch_at(t))
        # Window (4, 8]: panes [4,6) and [6,8) and the live [8,10) pane.
        assert engine.query_now(whole)["exact"] == pytest.approx(9.0)
        # Retention is bounded by panes-per-window + the live pane.
        assert engine.num_panes <= 3

    def test_landmark_keeps_everything(self):
        engine = StreamEngine(self.one_d_domain(), "exact", 50)
        whole = Box((0,), ((1 << 10) - 1,))
        for t in range(20):
            engine.process(self.batch_at(float(t)))
        assert engine.query_now(whole)["exact"] == pytest.approx(60.0)
        assert engine.num_panes == 1

    def test_out_of_order_timestamps_rejected(self):
        engine = StreamEngine(
            self.one_d_domain(), "exact", 50, window=tumbling(4.0)
        )
        engine.process(self.batch_at(5.0))
        with pytest.raises(ValueError, match="non-decreasing"):
            engine.process(self.batch_at(4.0))

    def test_arrival_clock_when_unstamped(self):
        engine = StreamEngine(
            self.one_d_domain(), "exact", 50, window=tumbling(3.0)
        )
        coords = np.asarray([[1]], dtype=np.int64)
        for _ in range(7):
            engine.process((coords, np.ones(1)))
        assert engine.now == 6.0  # 1 unit per batch, starting at 0
        whole = Box((0,), ((1 << 10) - 1,))
        # Batches 6.. fall in the third tumbling window: one so far.
        assert engine.query_now(whole)["exact"] == pytest.approx(1.0)

    def test_empty_pane_with_buffered_method_folds(self):
        """Empty panes are the merge identity, whatever their stub type.

        Regression: a buffered-rebuild method's empty pane snapshots to
        an exact-store placeholder, which must not be merged with the
        other panes' sample summaries.
        """
        engine = StreamEngine(
            self.one_d_domain(), ["varopt", "exact"], 50,
            window=sliding(width=60.0, slide=15.0),
        )
        # First batch lands in pane 1; the eagerly-created pane 0 is
        # sealed empty.
        engine.process(self.batch_at(20.0, keys=(5, 6, 7), w=2.0))
        whole = Box((0,), ((1 << 10) - 1,))
        live = engine.query_now(whole)
        assert live["exact"] == pytest.approx(6.0)
        assert live["varopt"] == pytest.approx(6.0)

    def test_last_window_requires_tumbling(self):
        engine = StreamEngine(self.one_d_domain(), "exact", 50)
        with pytest.raises(ValueError, match="tumbling"):
            engine.last_window()

    def test_window_validation(self):
        with pytest.raises(ValueError):
            sliding(width=2.0, slide=3.0)  # pane > width
        with pytest.raises(ValueError):
            tumbling(0.0)


class TestEngineBasics:
    def test_unknown_method_fails_fast(self):
        domain = ProductDomain([OrderedDomain(16)])
        with pytest.raises(KeyError, match="unknown method"):
            StreamEngine(domain, "no-such-method", 10)

    def test_one_d_only_method_rejects_2d_domain(self):
        data = skewed_dataset(n=10)
        with pytest.raises(ValueError, match="1-D"):
            StreamEngine(data.domain, "qdigest-stream", 10)

    def test_snapshot_unknown_method(self):
        domain = ProductDomain([OrderedDomain(16)])
        engine = StreamEngine(domain, "exact", 10)
        with pytest.raises(KeyError):
            engine.snapshot("obliv")

    def test_ingest_limit_and_sources(self):
        data = skewed_dataset(n=900)
        engine = StreamEngine(data.domain, "exact", 10)

        def source():
            for start in range(0, data.n, 100):
                yield MicroBatch(
                    data.coords[start:start + 100],
                    data.weights[start:start + 100],
                )

        ingested = engine.ingest(source(), limit=3)
        assert ingested == 300
        assert engine.batches_seen == 3
        # A Dataset is a valid single batch too.
        engine.ingest([data.subset(np.arange(300, 400))])
        assert engine.items_seen == 400

    def test_empty_engine_answers_zero(self):
        domain = ProductDomain([OrderedDomain(16)])
        engine = StreamEngine(domain, ["exact", "obliv", "qdigest"], 10)
        box = Box((0,), (15,))
        answers = engine.query_now(box)
        assert answers == {"exact": 0.0, "obliv": 0.0, "qdigest": 0.0}

    def test_query_now_accepts_multirange(self):
        from repro.structures.ranges import MultiRangeQuery

        domain = ProductDomain([OrderedDomain(64)])
        engine = StreamEngine(domain, "exact", 10)
        engine.process((np.asarray([[3], [40]]), np.asarray([2.0, 5.0])))
        query = MultiRangeQuery([Box((0,), (7,)), Box((32,), (63,))])
        assert engine.query_now(query)["exact"] == pytest.approx(7.0)

    def test_stream_generators_window_equivalence(self):
        """Batch-duration-aligned streams window-reproduce batch data."""
        whole_data = generate_bursty_series(seed=11)
        horizon = whole_data.domain.sizes[0]
        pane = horizon // 16
        engine = StreamEngine(
            whole_data.domain, "exact", 10,
            window=sliding(width=4 * pane, slide=pane),
        )
        engine.ingest(stream_bursty_series(seed=11, batch_duration=pane))
        now = engine.now
        # Pane-granular window: panes with end > now - width survive,
        # i.e. pane indices >= floor((now - width) / pane).
        import math

        idx_min = max(0, int(math.floor((now - 4 * pane) / pane)))
        keys = whole_data.coords[:, 0]
        mask = keys >= np.int64(idx_min * pane)
        truth = float(whole_data.weights[mask].sum())
        box = Box((0,), (horizon - 1,))
        assert engine.query_now(box)["exact"] == pytest.approx(truth)
