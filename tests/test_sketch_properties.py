"""Deeper Count-Sketch properties: estimator error scaling and the
dyadic summary's exactness on canonical rectangles."""

import numpy as np
import pytest

from repro.core.types import Dataset
from repro.structures.dyadic import dyadic_cell_interval
from repro.structures.hierarchy import BitHierarchy
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box
from repro.summaries.sketch import CountSketch, DyadicSketchSummary


class TestErrorScaling:
    def test_error_shrinks_with_width(self):
        # Count-Sketch error ~ ||f||_2 / sqrt(width): doubling width
        # should reduce the rms error.
        rng_data = np.random.default_rng(0)
        keys = rng_data.integers(0, 2**32, size=3000).astype(np.uint64)
        values = 1.0 + rng_data.pareto(1.3, size=3000)
        probes = keys[:100]
        rms = {}
        for width in (64, 1024):
            errors = []
            for t in range(10):
                sk = CountSketch(width, 5, np.random.default_rng(t))
                sk.update_many(keys, values)
                est = sk.estimate_many(probes)
                errors.extend((est - values[:100]).tolist())
            rms[width] = float(np.sqrt(np.mean(np.square(errors))))
        assert rms[1024] < rms[64]

    def test_deeper_sketch_reduces_outliers(self):
        rng_data = np.random.default_rng(1)
        keys = rng_data.integers(0, 2**32, size=2000).astype(np.uint64)
        values = np.ones(2000)
        max_err = {}
        for depth in (1, 7):
            errors = []
            for t in range(10):
                sk = CountSketch(256, depth, np.random.default_rng(t))
                sk.update_many(keys, values)
                est = sk.estimate_many(keys[:200])
                errors.extend(np.abs(est - 1.0).tolist())
            max_err[depth] = float(np.max(errors))
        assert max_err[7] <= max_err[1]

    def test_updates_are_incremental(self):
        rng = np.random.default_rng(2)
        sk = CountSketch(128, 3, rng)
        keys = np.array([11, 11, 11], dtype=np.uint64)
        sk.update_many(keys, np.array([1.0, 2.0, 3.0]))
        single = CountSketch(128, 3, np.random.default_rng(2))
        single.update_many(np.array([11], dtype=np.uint64), np.array([6.0]))
        assert sk.estimate(11) == pytest.approx(single.estimate(11))


class TestDyadicSummaryStructure:
    def make_data(self, bits=5, n=40, seed=3):
        rng = np.random.default_rng(seed)
        domain = ProductDomain([BitHierarchy(bits), BitHierarchy(bits)])
        coords = rng.integers(0, 1 << bits, size=(n, 2))
        weights = 1.0 + rng.random(n)
        return Dataset(
            coords=coords, weights=weights, domain=domain
        ).aggregate_duplicates()

    def test_canonical_rectangle_single_sketch_probe(self):
        # A query that IS one dyadic rectangle uses exactly one sketch
        # cell; with a huge budget the answer is near-exact.
        data = self.make_data()
        sk = DyadicSketchSummary(data, 10**6, rng=np.random.default_rng(0))
        lo, hi = dyadic_cell_interval(5, 2, 1)  # depth-2 cell on x
        box = Box((lo, 0), (hi, 31))
        truth = data.weights[box.contains(data.coords)].sum()
        assert sk.query(box) == pytest.approx(truth, rel=0.02, abs=1.0)

    def test_full_domain_query(self):
        data = self.make_data(seed=4)
        sk = DyadicSketchSummary(data, 10**6, rng=np.random.default_rng(1))
        full = data.domain.full_box()
        assert sk.query(full) == pytest.approx(
            data.total_weight, rel=0.05, abs=2.0
        )

    def test_small_budget_width_floor(self):
        # Even a tiny budget yields width >= 1 everywhere (the paper's
        # observation that 2-D sketches need lots of space shows up as
        # wild estimates, not crashes).
        data = self.make_data(seed=5)
        sk = DyadicSketchSummary(data, 10, rng=np.random.default_rng(2))
        box = Box((0, 0), (15, 15))
        assert np.isfinite(sk.query(box))
