"""The method registry also works on 1-D (ordered) datasets.

The paper's evaluation is two-dimensional, but every summary in the
library supports 1-D domains; this guards the shared interface across
dimensionalities (time-series use cases).
"""

import numpy as np
import pytest

from repro.datagen.timeseries import TimeSeriesConfig, generate_bursty_series
from repro.experiments.harness import METHODS, build_summary, ground_truths
from repro.structures.ranges import MultiRangeQuery, interval


@pytest.fixture(scope="module")
def series():
    return generate_bursty_series(
        TimeSeriesConfig(horizon=1 << 16, n_background=1500,
                         n_bursts=4, burst_events=150),
        seed=9,
    )


@pytest.fixture(scope="module")
def window_queries(series):
    horizon = series.domain.axes[0].size
    step = horizon // 8
    return [
        MultiRangeQuery([interval(i * step, (i + 1) * step - 1)])
        for i in range(8)
    ]


@pytest.mark.parametrize("method", sorted(METHODS))
def test_method_builds_and_answers_1d(method, series, window_queries):
    summary, seconds = build_summary(
        method, series, 80, np.random.default_rng(1)
    )
    assert seconds >= 0
    estimates = summary.query_many(window_queries)
    assert len(estimates) == len(window_queries)
    assert all(np.isfinite(e) for e in estimates)


@pytest.mark.parametrize("method", ["aware", "obliv", "qdigest"])
def test_reasonable_1d_accuracy(method, series, window_queries):
    truths = ground_truths(series, window_queries)
    total = series.total_weight
    summary, _ = build_summary(
        method, series, 300, np.random.default_rng(2)
    )
    estimates = np.asarray(summary.query_many(window_queries))
    # Windows partition the domain: errors should be a small fraction
    # of the total for every method at s=300 (sanity, not a race).
    mean_err = float(np.abs(estimates - truths).mean() / total)
    assert mean_err < 0.1


def test_window_estimates_sum_to_total_for_samples(series, window_queries):
    summary, _ = build_summary(
        "aware", series, 200, np.random.default_rng(3)
    )
    estimates = np.asarray(summary.query_many(window_queries))
    # The eight windows tile the domain exactly.
    assert estimates.sum() == pytest.approx(summary.estimate_total())
