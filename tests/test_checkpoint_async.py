"""Background checkpoints: non-blocking, atomic w.r.t. ingestion.

``checkpoint_async=True`` moves the whole checkpoint (freeze + encode
+ append + truncate + sync) onto a background thread while holding the
engine's ingest lock, so a concurrent ``process()`` waits instead of
interleaving.  The suite wraps the store to (a) slow the state append
down enough to observe concurrency and (b) record an event trace that
proves no ingest ran *inside* the checkpoint's critical section.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.durable import LogCheckpointStore
from repro.stream.engine import AsyncCheckpoint, StreamEngine
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box


class _SlowStore:
    """Store proxy: traces calls, dwells inside the "state" append."""

    def __init__(self, inner, dwell: float = 0.15):
        self._inner = inner
        self._dwell = dwell
        self.events = []
        self._events_lock = threading.Lock()

    def record(self, name):
        with self._events_lock:
            self.events.append((name, threading.get_ident()))

    def append(self, stream_id, kind, payload, **kwargs):
        if kind == "state":
            self.record("state-begin")
            time.sleep(self._dwell)
            seq = self._inner.append(stream_id, kind, payload, **kwargs)
            self.record("state-end")
            return seq
        if kind == "batch":
            self.record("batch")
        return self._inner.append(stream_id, kind, payload, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _engine(tmp_path, store, **kwargs):
    domain = ProductDomain([OrderedDomain(1 << 10)])
    return StreamEngine(domain, "qdigest-stream", 150, store=store,
                        stream_id="s", **kwargs)


def _feed(engine, rng, batches=5, n=50):
    for _ in range(batches):
        engine.process((rng.integers(0, 1 << 10, n), rng.random(n)))


def test_async_checkpoint_returns_before_completion(tmp_path):
    store = _SlowStore(LogCheckpointStore(str(tmp_path / "ck")))
    engine = _engine(tmp_path, store, checkpoint_async=True)
    _feed(engine, np.random.default_rng(1))
    started = time.perf_counter()
    handle = engine.checkpoint()
    elapsed = time.perf_counter() - started
    assert isinstance(handle, AsyncCheckpoint)
    # The call returned while the background append is still dwelling.
    assert elapsed < store._dwell / 2
    seq = handle.result(timeout=10)
    assert isinstance(seq, int)
    assert handle.done


def test_inflight_checkpoint_never_interleaves_with_ingest(tmp_path):
    """The satellite's guarantee: while the async checkpoint holds the
    critical section, `process()` blocks -- the event trace shows no
    batch log between state-begin and state-end, over many rounds."""
    store = _SlowStore(LogCheckpointStore(str(tmp_path / "ck")),
                       dwell=0.05)
    engine = _engine(tmp_path, store, checkpoint_async=True)
    rng = np.random.default_rng(2)
    _feed(engine, rng)
    for _round in range(5):
        handle = engine.checkpoint()
        # Ingest immediately from this thread: must serialize after.
        _feed(engine, rng, batches=2)
        handle.result(timeout=10)
    events = store.events
    open_ckpt = False
    for name, _tid in events:
        if name == "state-begin":
            assert not open_ckpt
            open_ckpt = True
        elif name == "state-end":
            open_ckpt = False
        else:  # batch
            assert not open_ckpt, "ingest interleaved with checkpoint"
    assert not open_ckpt
    assert sum(1 for name, _ in events if name == "state-begin") == 5


def test_async_checkpoint_restore_matches_sync(tmp_path):
    """The persisted state is the same cut a synchronous checkpoint
    would take: restored engines answer identically."""
    rng_a = np.random.default_rng(3)
    rng_b = np.random.default_rng(3)
    sync_store = LogCheckpointStore(str(tmp_path / "sync"))
    async_store = LogCheckpointStore(str(tmp_path / "async"))
    sync_engine = _engine(tmp_path, sync_store)
    async_engine = _engine(tmp_path, async_store, checkpoint_async=True)
    _feed(sync_engine, rng_a)
    _feed(async_engine, rng_b)
    sync_engine.checkpoint()
    async_engine.checkpoint().result(timeout=10)
    boxes = [Box((i * 64,), (i * 64 + 63,)) for i in range(16)]
    restored_sync = StreamEngine.restore(sync_store, "s")
    restored_async = StreamEngine.restore(async_store, "s")
    assert (
        restored_sync.query_many_now(boxes)
        == restored_async.query_many_now(boxes)
    )


def test_consecutive_async_checkpoints_serialize(tmp_path):
    store = _SlowStore(LogCheckpointStore(str(tmp_path / "ck")),
                       dwell=0.05)
    engine = _engine(tmp_path, store, checkpoint_async=True)
    _feed(engine, np.random.default_rng(4))
    first = engine.checkpoint()
    second = engine.checkpoint()  # waits for the first internally
    assert first.done
    seq1 = first.result(timeout=10)
    seq2 = second.result(timeout=10)
    assert seq2 > seq1


def test_sync_engine_unchanged(tmp_path):
    engine = _engine(
        tmp_path, LogCheckpointStore(str(tmp_path / "ck"))
    )
    _feed(engine, np.random.default_rng(5))
    seq = engine.checkpoint()
    assert isinstance(seq, int)
    assert engine._ckpt_lock is None  # no lock on the sync hot path


def test_checkpoint_error_surfaces_in_result(tmp_path):
    class _FailingStore(_SlowStore):
        def append(self, stream_id, kind, payload, **kwargs):
            if kind == "state":
                raise OSError("disk full")
            return super().append(stream_id, kind, payload, **kwargs)

    store = _FailingStore(LogCheckpointStore(str(tmp_path / "ck")))
    engine = _engine(tmp_path, store, checkpoint_async=True)
    _feed(engine, np.random.default_rng(6))
    handle = engine.checkpoint()
    with pytest.raises(OSError, match="disk full"):
        handle.result(timeout=10)
    # The engine stays usable after a failed checkpoint.
    _feed(engine, np.random.default_rng(7), batches=1)
