"""Tests for the bursty time-series generator and its use with the
order-structure sampler."""

import numpy as np
import pytest

from repro.aware.order_sampler import order_aware_sample
from repro.core.discrepancy import max_interval_discrepancy
from repro.core.varopt import varopt_sample
from repro.datagen.timeseries import (
    TimeSeriesConfig,
    burstiness,
    generate_bursty_series,
)
from repro.structures.ranges import interval
from repro.summaries.exact import ExactSummary


class TestGenerator:
    def test_shape(self):
        data = generate_bursty_series(
            TimeSeriesConfig(horizon=10_000, n_background=500,
                             n_bursts=3, burst_events=100),
            seed=1,
        )
        assert data.dims == 1
        assert data.n > 400
        assert data.keys_1d().max() < 10_000

    def test_deterministic(self):
        config = TimeSeriesConfig(horizon=10_000, n_background=300,
                                  n_bursts=2, burst_events=50)
        a = generate_bursty_series(config, seed=5)
        b = generate_bursty_series(config, seed=5)
        np.testing.assert_array_equal(a.coords, b.coords)

    def test_bursty_beats_uniform_on_burstiness(self):
        bursty = generate_bursty_series(
            TimeSeriesConfig(horizon=100_000, n_background=1000,
                             n_bursts=8, burst_events=300),
            seed=2,
        )
        uniform = generate_bursty_series(
            TimeSeriesConfig(horizon=100_000, n_background=3000,
                             n_bursts=0, burst_events=0),
            seed=2,
        )
        assert burstiness(bursty) > 2 * burstiness(uniform)

    def test_burstiness_zero_weight(self):
        from repro.core.types import Dataset

        data = Dataset.one_dimensional([1, 2], [0.0, 0.0], size=10)
        assert burstiness(data) == 0.0


class TestOrderSamplingOnBursts:
    def test_interval_theorem_holds_on_bursty_data(self):
        data = generate_bursty_series(
            TimeSeriesConfig(horizon=1 << 18, n_background=2000,
                             n_bursts=6, burst_events=200),
            seed=3,
        )
        keys = data.keys_1d()
        for t in range(10):
            included, tau, probs = order_aware_sample(
                keys, data.weights, 100, np.random.default_rng(t)
            )
            mask = np.zeros(data.n, bool)
            mask[included] = True
            assert max_interval_discrepancy(keys, probs, mask) < 2 + 1e-9

    def test_aware_beats_oblivious_on_burst_windows(self):
        data = generate_bursty_series(
            TimeSeriesConfig(horizon=1 << 18, n_background=3000,
                             n_bursts=8, burst_events=300),
            seed=4,
        )
        keys = data.keys_1d()
        exact = ExactSummary(data)
        # Query windows centered on the heavy regions (quartiles).
        qs = [
            interval(i * (1 << 16), (i + 1) * (1 << 16) - 1)
            for i in range(4)
        ]
        truths = np.array([exact.query(q) for q in qs])
        s = 150
        aware_err, obliv_err = [], []
        for t in range(15):
            inc_a, tau, _ = order_aware_sample(
                keys, data.weights, s, np.random.default_rng(t)
            )
            adj = np.maximum(data.weights[inc_a], tau)
            k_a = keys[inc_a]
            est_a = np.array([
                adj[(k_a >= q.lows[0]) & (k_a <= q.highs[0])].sum()
                for q in qs
            ])
            aware_err.append(np.abs(est_a - truths).mean())
            inc_o, tau_o = varopt_sample(
                data.weights, s, np.random.default_rng(t + 10**6)
            )
            adj_o = np.maximum(data.weights[inc_o], tau_o)
            k_o = keys[inc_o]
            est_o = np.array([
                adj_o[(k_o >= q.lows[0]) & (k_o <= q.highs[0])].sum()
                for q in qs
            ])
            obliv_err.append(np.abs(est_o - truths).mean())
        assert np.mean(aware_err) < np.mean(obliv_err)
