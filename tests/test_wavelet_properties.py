"""Deeper properties of the Haar wavelet summary.

Linearity of the transform, orthonormality of the basis (Parseval),
and additivity of range queries -- on small dense domains where we can
afford exhaustive checks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Dataset
from repro.structures.hierarchy import BitHierarchy
from repro.structures.product import ProductDomain, line_domain
from repro.structures.ranges import Box, interval
from repro.summaries.wavelet import (
    SCALING_LEVEL,
    WaveletSummary,
    _axis_levels_and_values,
    _basis_interval_sums,
)


def dense_1d(values):
    """A 1-D dataset with one key per domain slot."""
    values = np.asarray(values, dtype=float)
    return Dataset.one_dimensional(
        np.arange(values.size), values, size=values.size
    )


class TestBasisFunctions:
    def test_orthonormality_small_domain(self):
        # Materialize every basis function over [0, 16) and verify the
        # Gram matrix is the identity.
        bits = 4
        size = 1 << bits
        x = np.arange(size)
        levels, indices, values = _axis_levels_and_values(x, bits)
        # Collect distinct basis functions as vectors.
        basis = {}
        for row in range(levels.shape[0]):
            for pos in range(size):
                key = (int(levels[row, pos]), int(indices[row, pos]))
                vec = basis.setdefault(key, np.zeros(size))
                vec[pos] = values[row, pos]
        mat = np.stack(list(basis.values()))
        gram = mat @ mat.T
        np.testing.assert_allclose(gram, np.eye(mat.shape[0]), atol=1e-12)

    def test_basis_count(self):
        # 2^bits basis functions span the whole space.
        bits = 5
        size = 1 << bits
        x = np.arange(size)
        levels, indices, _ = _axis_levels_and_values(x, bits)
        keys = set()
        for row in range(levels.shape[0]):
            for pos in range(size):
                keys.add((int(levels[row, pos]), int(indices[row, pos])))
        assert len(keys) == size

    def test_interval_sums_match_pointwise(self):
        bits = 5
        size = 1 << bits
        x = np.arange(size)
        levels, indices, values = _axis_levels_and_values(x, bits)
        # Pick the finest-level function over cell 3 and the scaling fn.
        probes = [(SCALING_LEVEL, 0), (2, 1), (bits - 1, 3)]
        for level, k in probes:
            # Pointwise reconstruction of the basis function.
            vec = np.zeros(size)
            for row in range(levels.shape[0]):
                mask = (levels[row] == level) & (indices[row] == k)
                vec[np.flatnonzero(mask)] = values[row][mask]
            for lo, hi in [(0, size - 1), (3, 17), (8, 8)]:
                got = _basis_interval_sums(
                    np.array([level]), np.array([k]), lo, hi, bits
                )[0]
                assert got == pytest.approx(vec[lo:hi + 1].sum(), abs=1e-12)


class TestTransformProperties:
    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=16,
                 max_size=16),
        st.lists(st.floats(min_value=0, max_value=100), min_size=16,
                 max_size=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_linearity_of_range_answers(self, a_vals, b_vals):
        # query(data_a + data_b) == query(data_a) + query(data_b) when
        # all coefficients are retained.
        a = dense_1d(a_vals)
        b = dense_1d(b_vals)
        ab = dense_1d(np.asarray(a_vals) + np.asarray(b_vals))
        wa = WaveletSummary(a, 10**9)
        wb = WaveletSummary(b, 10**9)
        wab = WaveletSummary(ab, 10**9)
        for lo, hi in [(0, 15), (2, 9), (7, 7)]:
            box = interval(lo, hi)
            assert wab.query(box) == pytest.approx(
                wa.query(box) + wb.query(box), abs=1e-6
            )

    def test_parseval_energy(self):
        # Sum of squared coefficients equals the energy of the data
        # (orthonormal transform).
        rng = np.random.default_rng(0)
        values = rng.random(64) * 10
        data = dense_1d(values)
        wav = WaveletSummary(data, 10**9)
        energy = float((values ** 2).sum())
        assert float((wav._c ** 2).sum()) == pytest.approx(energy)

    def test_query_additive_over_disjoint_boxes(self):
        rng = np.random.default_rng(1)
        domain = ProductDomain([BitHierarchy(5), BitHierarchy(5)])
        coords = rng.integers(0, 32, size=(60, 2))
        weights = 1.0 + rng.random(60)
        data = Dataset(coords=coords, weights=weights,
                       domain=domain).aggregate_duplicates()
        wav = WaveletSummary(data, 40)
        left = Box((0, 0), (15, 31))
        right = Box((16, 0), (31, 31))
        full = Box((0, 0), (31, 31))
        assert wav.query(full) == pytest.approx(
            wav.query(left) + wav.query(right), abs=1e-9
        )

    def test_retained_ranking_prefers_total_mass(self):
        # With budget 1 the scaling x scaling coefficient (largest range
        # impact) must be kept, so the full-domain query is exact.
        rng = np.random.default_rng(2)
        values = rng.random(64)
        data = dense_1d(values)
        wav = WaveletSummary(data, 1)
        assert wav.query(interval(0, 63)) == pytest.approx(values.sum())
