"""Tests for pair aggregation (Algorithm 1) and aggregation pools.

The deterministic axioms (mass conservation, set entries) are checked
exhaustively; the distributional axioms (agreement in expectation,
inclusion-exclusion inequalities) are checked statistically over many
trials with fixed seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    PairAggregator,
    aggregate_pool,
    check_aggregation_invariants,
    clamp,
    finalize_leftover,
    included_indices,
    is_set,
    pair_aggregate,
    pair_aggregate_values,
)

probs = st.floats(min_value=1e-6, max_value=1.0 - 1e-6)


class TestPairAggregateValues:
    def test_rejects_set_entries(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            pair_aggregate_values(0.0, 0.5, rng)
        with pytest.raises(ValueError):
            pair_aggregate_values(0.5, 1.0, rng)

    @given(probs, probs, st.integers(0, 2**31))
    @settings(max_examples=200, deadline=None)
    def test_sum_preserved_and_one_entry_set(self, p_i, p_j, seed):
        rng = np.random.default_rng(seed)
        out_i, out_j = pair_aggregate_values(p_i, p_j, rng)
        assert out_i + out_j == pytest.approx(p_i + p_j, abs=1e-9)
        assert is_set(out_i) or is_set(out_j)
        assert 0.0 <= out_i <= 1.0 and 0.0 <= out_j <= 1.0

    def test_small_sum_moves_mass_to_one_entry(self):
        rng = np.random.default_rng(1)
        out_i, out_j = pair_aggregate_values(0.2, 0.3, rng)
        assert sorted([out_i, out_j]) == pytest.approx([0.0, 0.5])

    def test_large_sum_sets_one_to_one(self):
        rng = np.random.default_rng(1)
        out_i, out_j = pair_aggregate_values(0.7, 0.8, rng)
        assert max(out_i, out_j) == 1.0
        assert min(out_i, out_j) == pytest.approx(0.5)

    def test_expectation_preserved_small_sum(self):
        rng = np.random.default_rng(42)
        trials = 40_000
        total_i = total_j = 0.0
        for _ in range(trials):
            out_i, out_j = pair_aggregate_values(0.2, 0.3, rng)
            total_i += out_i
            total_j += out_j
        assert total_i / trials == pytest.approx(0.2, abs=0.01)
        assert total_j / trials == pytest.approx(0.3, abs=0.01)

    def test_expectation_preserved_large_sum(self):
        rng = np.random.default_rng(43)
        trials = 40_000
        total_i = total_j = 0.0
        for _ in range(trials):
            out_i, out_j = pair_aggregate_values(0.9, 0.4, rng)
            total_i += out_i
            total_j += out_j
        assert total_i / trials == pytest.approx(0.9, abs=0.01)
        assert total_j / trials == pytest.approx(0.4, abs=0.01)

    def test_inclusion_product_bound(self):
        # Axiom (iii)(I): E[p_i' * p_j'] <= p_i * p_j.  After a pair
        # aggregation one factor is 0 or 1, so the product is nonzero
        # only when one entry reached 1.
        rng = np.random.default_rng(44)
        trials = 40_000
        p_i, p_j = 0.7, 0.6
        prod_sum = 0.0
        for _ in range(trials):
            out_i, out_j = pair_aggregate_values(p_i, p_j, rng)
            prod_sum += out_i * out_j
        assert prod_sum / trials <= p_i * p_j + 0.01

    def test_exclusion_product_bound(self):
        # Axiom (iii)(E): E[(1-p_i')(1-p_j')] <= (1-p_i)(1-p_j).
        rng = np.random.default_rng(45)
        trials = 40_000
        p_i, p_j = 0.3, 0.4
        prod_sum = 0.0
        for _ in range(trials):
            out_i, out_j = pair_aggregate_values(p_i, p_j, rng)
            prod_sum += (1 - out_i) * (1 - out_j)
        assert prod_sum / trials <= (1 - p_i) * (1 - p_j) + 0.01


class TestPairAggregateArray:
    def test_in_place(self):
        rng = np.random.default_rng(7)
        p = np.array([0.5, 0.2, 0.4])
        pair_aggregate(p, 0, 2, rng)
        assert p[1] == 0.2
        assert is_set(p[0]) or is_set(p[2])
        assert p.sum() == pytest.approx(1.1)


class TestHelpers:
    def test_is_set(self):
        assert is_set(0.0) and is_set(1.0)
        assert is_set(1e-12) and is_set(1 - 1e-12)
        assert not is_set(0.5)

    def test_clamp(self):
        assert clamp(1e-12) == 0.0
        assert clamp(1 - 1e-12) == 1.0
        assert clamp(0.5) == 0.5

    def test_included_indices(self):
        p = np.array([1.0, 0.0, 0.9999999999999, 0.5])
        np.testing.assert_array_equal(included_indices(p), [0, 2])

    def test_check_invariants_passes(self):
        check_aggregation_invariants(
            np.array([0.5, 0.5]), np.array([1.0, 0.0])
        )

    def test_check_invariants_mass(self):
        with pytest.raises(AssertionError):
            check_aggregation_invariants(
                np.array([0.5, 0.5]), np.array([1.0, 0.5])
            )

    def test_check_invariants_range(self):
        with pytest.raises(AssertionError):
            check_aggregation_invariants(
                np.array([0.5, 0.7]), np.array([1.3, -0.1])
            )


class TestAggregatePool:
    def test_integral_mass_sets_everything(self):
        rng = np.random.default_rng(3)
        p = np.full(10, 0.3)  # total mass 3.0
        leftover = aggregate_pool(p, range(10), rng)
        finalize_leftover(p, leftover, rng)
        assert set(np.round(p, 9)) <= {0.0, 1.0}
        assert int(p.sum()) == 3

    def test_nonintegral_mass_single_leftover(self):
        rng = np.random.default_rng(4)
        p = np.full(7, 0.3)  # total mass 2.1
        leftover = aggregate_pool(p, range(7), rng)
        assert leftover is not None
        assert 0 < p[leftover] < 1
        others = [i for i in range(7) if i != leftover]
        assert all(is_set(p[i]) for i in others)
        assert p.sum() == pytest.approx(2.1)

    def test_skips_set_entries(self):
        rng = np.random.default_rng(5)
        p = np.array([1.0, 0.5, 0.0, 0.5])
        leftover = aggregate_pool(p, range(4), rng)
        assert leftover is None  # 0.5 + 0.5 = 1.0 resolves exactly
        assert p.sum() == pytest.approx(2.0)

    def test_empty_pool(self):
        rng = np.random.default_rng(6)
        p = np.array([0.5])
        assert aggregate_pool(p, [], rng) is None

    def test_single_fractional(self):
        rng = np.random.default_rng(6)
        p = np.array([0.5])
        assert aggregate_pool(p, [0], rng) == 0

    def test_none_entries_ignored(self):
        rng = np.random.default_rng(6)
        p = np.array([0.5, 0.5])
        leftover = aggregate_pool(p, [None, 0, None, 1], rng)
        assert leftover is None

    def test_expectations_preserved_across_pool(self):
        rng = np.random.default_rng(8)
        base = np.array([0.2, 0.7, 0.4, 0.55, 0.15])
        trials = 20_000
        sums = np.zeros_like(base)
        for _ in range(trials):
            p = base.copy()
            leftover = aggregate_pool(p, range(5), rng)
            finalize_leftover(p, leftover, rng)
            sums += p
        np.testing.assert_allclose(sums / trials, base, atol=0.015)

    def test_sample_size_always_floor_or_ceil(self):
        rng = np.random.default_rng(9)
        base = np.array([0.2, 0.7, 0.4, 0.55, 0.15])  # total 2.0
        for _ in range(300):
            p = base.copy()
            leftover = aggregate_pool(p, range(5), rng)
            finalize_leftover(p, leftover, rng)
            assert int(round(p.sum())) == 2


class TestFinalizeLeftover:
    def test_none_is_noop(self):
        rng = np.random.default_rng(1)
        p = np.array([0.5])
        finalize_leftover(p, None, rng)
        assert p[0] == 0.5

    def test_bernoulli_expectation(self):
        rng = np.random.default_rng(2)
        hits = 0
        trials = 20_000
        for _ in range(trials):
            p = np.array([0.3])
            finalize_leftover(p, 0, rng)
            hits += int(p[0] == 1.0)
        assert hits / trials == pytest.approx(0.3, abs=0.01)

    def test_snaps_nearly_set(self):
        rng = np.random.default_rng(3)
        p = np.array([1 - 1e-12])
        finalize_leftover(p, 0, rng)
        assert p[0] == 1.0


class TestPairAggregator:
    def test_combines_records(self):
        rng = np.random.default_rng(11)
        agg = PairAggregator(rng)
        out = agg.combine(("a", 0.4), ("b", 0.3))
        keys = [k for k, _ in out]
        assert keys == ["a", "b"]
        total = sum(p for _, p in out)
        assert total == pytest.approx(0.7)
        assert any(is_set(p) for _, p in out)
