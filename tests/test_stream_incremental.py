"""Incremental summary protocol: native streamers + buffered rebuilds."""

import numpy as np
import pytest

from repro.core.estimator import SampleSummary
from repro.core.types import Dataset
from repro.core.varopt import StreamVarOpt
from repro.stream import (
    BufferedRebuildSummary,
    derive_seed,
    incremental_summary,
)
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain
from repro.structures.ranges import Box
from repro.summaries.exact import ExactSummary
from repro.summaries.qdigest_stream import StreamingQDigest
from repro.summaries.sketch import CountSketch, DyadicSketchSummary


def skewed_dataset(n=1000, seed=5, dims=2):
    rng = np.random.default_rng(seed)
    size = 1 << 16
    coords = rng.integers(0, size, size=(n, dims))
    weights = 1.0 + rng.pareto(1.4, size=n)
    domain = ProductDomain([OrderedDomain(size) for _ in range(dims)])
    return Dataset(coords=coords, weights=weights, domain=domain)


class TestDeriveSeed:
    def test_deterministic_and_distinct(self):
        assert derive_seed(7, "obliv", 3) == derive_seed(7, "obliv", 3)
        seen = {
            derive_seed(root, method, pane)
            for root in (0, 1)
            for method in ("obliv", "exact")
            for pane in range(5)
        }
        assert len(seen) == 20  # no collisions across the path space

    def test_string_and_int_paths_stable(self):
        # CRC32 of the method name makes the derivation process-stable.
        assert derive_seed(1, "fold", "obliv", 2) == \
            derive_seed(1, "fold", "obliv", 2)
        assert derive_seed(1, "a") != derive_seed(1, "b")


class TestExactIncremental:
    def test_update_snapshot_and_insulation(self):
        store = ExactSummary.empty(dims=1)
        store.update([[1], [5], [9]], [1.0, 2.0, 3.0])
        v1 = store.version
        snap = store.snapshot()
        store.update([[2]], [10.0])
        assert store.version > v1
        box = Box((0,), (15,))
        # The snapshot is insulated from the later update.
        assert snap.query(box) == pytest.approx(6.0)
        assert store.query(box) == pytest.approx(16.0)
        assert store.size == 4 and snap.size == 3

    def test_dims_and_length_validation(self):
        store = ExactSummary.empty(dims=2)
        with pytest.raises(ValueError, match="dimensionality"):
            store.update([[1], [2]], [1.0, 1.0])
        with pytest.raises(ValueError, match="matching length"):
            store.update([[1, 2]], [1.0, 2.0])


class TestStreamVarOptIncremental:
    def test_update_matches_feed(self):
        """``update`` and per-item ``feed`` build the same VarOpt sample.

        The vectorized bulk path consumes the generator in batches, so
        the two reservoirs realize different (equally valid) inclusion
        draws -- but every *sample-path-deterministic* property of
        VarOpt must agree exactly: the threshold (the offline tau of
        the prefix), the sample size, and exact retention of every
        above-threshold item.
        """
        data = skewed_dataset(n=400)
        a = StreamVarOpt(60, rng=123)
        b = StreamVarOpt(60, rng=123)
        a.update(data.coords, data.weights)
        for key, weight in data.iter_items():
            b.feed(key, weight)
        sa, sb = a.snapshot(), b.snapshot()
        # Identical up to float summation order (cumsum vs running sum).
        assert sa.tau == pytest.approx(sb.tau, rel=1e-12)
        assert sa.size == sb.size == 60
        assert a.version == b.version == data.n
        # Heavy items (weight >= tau) are included deterministically,
        # with their exact weights, by both paths.
        heavy = {
            key: weight
            for key, weight in data.iter_items()
            if weight >= sa.tau
        }
        for summary in (sa, sb):
            kept = dict(
                zip(map(tuple, summary.coords.tolist()),
                    summary.weights.tolist())
            )
            for key, weight in heavy.items():
                assert kept[key] == weight

    def test_update_bulk_path_unbiased(self):
        """The bulk light path keeps subset-sum estimates unbiased."""
        data = skewed_dataset(n=1500, seed=11, dims=1)
        box = Box((0,), ((1 << 16) // 3,))
        truth = float(data.weights[box.contains(data.coords)].sum())
        estimates = []
        for seed in range(60):
            sampler = StreamVarOpt(80, rng=seed)
            # Micro-batches exercise full/partial bulk prefixes.
            for start in range(0, data.n, 250):
                sampler.update(
                    data.coords[start:start + 250],
                    data.weights[start:start + 250],
                )
            estimates.append(sampler.snapshot().query(box))
        estimates = np.asarray(estimates)
        sem = estimates.std(ddof=1) / np.sqrt(len(estimates))
        assert abs(estimates.mean() - truth) <= 3.5 * sem

    def test_snapshot_is_sample_summary(self):
        sampler = StreamVarOpt(10, rng=0)
        sampler.update([[1, 2], [3, 4]], [1.0, 2.0])
        snap = sampler.snapshot()
        assert isinstance(snap, SampleSummary)
        assert snap.estimate_total() == pytest.approx(3.0)

    def test_length_mismatch_rejected_even_when_divisible(self):
        """4 flat keys with 2 weights must not fold into two 2-D keys."""
        sampler = StreamVarOpt(10, rng=0)
        with pytest.raises(ValueError, match="matching length"):
            sampler.update([1, 2, 3, 4], [1.0, 2.0])

    def test_flat_key_sequences_disambiguated(self):
        # n 1-D keys with n weights...
        a = StreamVarOpt(10, rng=0)
        a.update([1, 2, 3], [1.0, 1.0, 1.0])
        assert a.snapshot().dims == 1
        # ...vs one d-dimensional key tuple with one weight.
        b = StreamVarOpt(10, rng=0)
        b.update((4, 5), [2.0])
        assert b.snapshot().dims == 2

    def test_seed_int_and_generator_accepted(self):
        assert StreamVarOpt(5, rng=1)._rng is not None
        gen = np.random.default_rng(2)
        assert StreamVarOpt(5, rng=gen)._rng is gen


class TestStreamingQDigestIncremental:
    def test_snapshot_insulated(self):
        digest = StreamingQDigest(10, 20)
        digest.update(np.arange(100), np.ones(100))
        snap = digest.snapshot()
        digest.update([5], [100.0])
        assert snap.total == pytest.approx(100.0)
        assert digest.total == pytest.approx(200.0)
        assert digest.version == 101

    def test_update_rejects_2d_keys(self):
        digest = StreamingQDigest(10, 20)
        with pytest.raises(ValueError, match="1-D"):
            digest.update(np.zeros((3, 2), dtype=np.int64), np.ones(3))


class TestSketchIncremental:
    def test_streamed_equals_batch(self):
        data = skewed_dataset(n=500)
        streamed = DyadicSketchSummary.for_domain(data.domain, 512)
        for start in range(0, data.n, 50):
            streamed.update(data.coords[start:start + 50],
                            data.weights[start:start + 50])
        batch = DyadicSketchSummary(data, 512)
        box = Box((0, 0), ((1 << 15) - 1, (1 << 16) - 1))
        assert streamed.query(box) == pytest.approx(batch.query(box))

    def test_snapshot_insulated(self):
        data = skewed_dataset(n=200)
        sketch = DyadicSketchSummary.for_domain(data.domain, 256)
        sketch.update(data.coords, data.weights)
        snap = sketch.snapshot()
        box = Box((0, 0), ((1 << 16) - 1, (1 << 16) - 1))
        before = snap.query(box)
        sketch.update(data.coords, data.weights)
        assert snap.query(box) == pytest.approx(before)
        assert sketch.query(box) == pytest.approx(2 * before)

    def test_pane_merge_equals_whole(self):
        """Shared-hash pane sketches fold to the monolithic sketch."""
        data = skewed_dataset(n=600)
        whole = DyadicSketchSummary(data, 512, hash_seed=3)
        half = data.n // 2
        panes = [
            DyadicSketchSummary(data.subset(np.arange(half)), 512,
                                hash_seed=3),
            DyadicSketchSummary(data.subset(np.arange(half, data.n)), 512,
                                hash_seed=3),
        ]
        merged = panes[0].merge(panes[1])
        box = Box((0, 0), ((1 << 15) - 1, (1 << 15) - 1))
        assert merged.query(box) == pytest.approx(whole.query(box))

    def test_countsketch_merge_validation(self):
        a = CountSketch(16, 3, seed=1)
        b = CountSketch(16, 3, seed=1)
        c = CountSketch(16, 3, seed=2)
        keys = np.arange(10, dtype=np.uint64)
        a.update_many(keys, np.ones(10))
        b.update_many(keys, 2 * np.ones(10))
        merged = a.merge(b)
        est = merged.estimate_many(keys)
        np.testing.assert_allclose(est, a.estimate_many(keys) * 3)
        with pytest.raises(ValueError, match="hash"):
            a.merge(c)
        with pytest.raises(TypeError):
            a.merge("nope")


class TestBufferedRebuild:
    def one_d_dataset(self, n=4096, seed=0):
        return skewed_dataset(n=n, seed=seed, dims=1)

    def test_geometric_rebuild_schedule(self):
        data = self.one_d_dataset(n=4096)
        inc = BufferedRebuildSummary(
            "wavelet", data.domain, 64, seed=0, min_buffer=256,
        )
        for start in range(0, data.n, 64):
            inc.update(data.coords[start:start + 64],
                       data.weights[start:start + 64])
        # 64 batches but only ~log2(4096/256) + 1 = 5 automatic builds.
        assert 3 <= inc.rebuild_count <= 6
        assert inc.items_buffered == data.n

    def test_snapshot_fresh_by_default(self):
        data = self.one_d_dataset(n=600)
        inc = BufferedRebuildSummary(
            "wavelet", data.domain, 1 << 17, seed=0, min_buffer=10_000,
        )
        inc.update(data.coords, data.weights)
        snap = inc.snapshot()
        box = Box((100,), (50_000,))
        truth = float(
            data.weights[box.contains(data.coords)].sum()
        )
        # Full coefficient budget: the wavelet is lossless.
        assert snap.query(box) == pytest.approx(truth)

    def test_stale_fraction_skips_rebuilds(self):
        data = self.one_d_dataset(n=1000)
        inc = BufferedRebuildSummary(
            "wavelet", data.domain, 64, seed=0,
            min_buffer=100, stale_fraction=0.5,
        )
        inc.update(data.coords[:500], data.weights[:500])
        inc.snapshot()
        builds = inc.rebuild_count
        inc.update(data.coords[500:600], data.weights[500:600])
        inc.snapshot()  # 100 new rows on 500 built: within 50% staleness
        assert inc.rebuild_count == builds
        inc.update(data.coords[600:], data.weights[600:])
        inc.snapshot()  # tail now exceeds the tolerated staleness
        assert inc.rebuild_count == builds + 1

    def test_empty_snapshot_answers_zero(self):
        data = self.one_d_dataset(n=10)
        inc = BufferedRebuildSummary("wavelet", data.domain, 32)
        snap = inc.snapshot()
        assert snap.query(Box((0,), (100,))) == 0.0

    def test_reproducible_given_seed(self):
        data = self.one_d_dataset(n=800)

        def build():
            inc = BufferedRebuildSummary(
                "varopt", data.domain, 50, seed=9, min_buffer=200,
            )
            for start in range(0, data.n, 100):
                inc.update(data.coords[start:start + 100],
                           data.weights[start:start + 100])
            return inc.snapshot()

        a, b = build(), build()
        np.testing.assert_array_equal(a.coords, b.coords)
        assert a.tau == b.tau

    def test_growth_validation(self):
        data = self.one_d_dataset(n=10)
        with pytest.raises(ValueError, match="growth"):
            BufferedRebuildSummary("wavelet", data.domain, 32, growth=1.0)


class TestIncrementalFactory:
    def test_native_and_buffered_resolution(self):
        domain = ProductDomain([OrderedDomain(1 << 16)])
        assert isinstance(
            incremental_summary("obliv", domain, 50), StreamVarOpt
        )
        assert isinstance(
            incremental_summary("exact", domain, 50), ExactSummary
        )
        assert isinstance(
            incremental_summary("qdigest-stream", domain, 50),
            StreamingQDigest,
        )
        assert isinstance(
            incremental_summary("sketch", domain, 50), DyadicSketchSummary
        )
        assert isinstance(
            incremental_summary("wavelet", domain, 50),
            BufferedRebuildSummary,
        )

    def test_unknown_name_raises(self):
        domain = ProductDomain([OrderedDomain(16)])
        with pytest.raises(KeyError, match="unknown method"):
            incremental_summary("nope", domain, 10)
