"""Tests for the sparse Haar wavelet summary."""

import numpy as np
import pytest

from repro.core.types import Dataset
from repro.structures.hierarchy import BitHierarchy
from repro.structures.product import ProductDomain
from repro.summaries.wavelet import WaveletSummary
from repro.structures.ranges import Box, interval


def dataset_1d(seed=0, n=40, bits=8):
    rng = np.random.default_rng(seed)
    keys = rng.choice(1 << bits, size=n, replace=False)
    weights = 1.0 + rng.pareto(1.0, size=n)
    return Dataset.one_dimensional(keys, weights, size=1 << bits)


def dataset_2d(seed=0, n=60, bits=6):
    rng = np.random.default_rng(seed)
    domain = ProductDomain([BitHierarchy(bits), BitHierarchy(bits)])
    coords = rng.integers(0, 1 << bits, size=(n, 2))
    weights = 1.0 + rng.pareto(1.0, size=n)
    data = Dataset(coords=coords, weights=weights, domain=domain)
    return data.aggregate_duplicates()


class TestExactnessWithAllCoefficients:
    def test_1d_point_reconstruction(self):
        data = dataset_1d()
        wav = WaveletSummary(data, s=10**9)  # keep everything
        for key, weight in zip(data.coords[:, 0], data.weights):
            assert wav.point_estimate((key,)) == pytest.approx(weight)

    def test_1d_range_sums_exact(self):
        data = dataset_1d()
        wav = WaveletSummary(data, s=10**9)
        keys = data.coords[:, 0]
        for lo, hi in [(0, 255), (10, 100), (37, 37), (200, 255)]:
            truth = data.weights[(keys >= lo) & (keys <= hi)].sum()
            assert wav.query(interval(lo, hi)) == pytest.approx(truth)

    def test_2d_point_reconstruction(self):
        data = dataset_2d()
        wav = WaveletSummary(data, s=10**9)
        for row, weight in zip(data.coords, data.weights):
            assert wav.point_estimate(tuple(row)) == pytest.approx(weight)

    def test_2d_range_sums_exact(self):
        data = dataset_2d()
        wav = WaveletSummary(data, s=10**9)
        for box in [
            Box((0, 0), (63, 63)),
            Box((5, 10), (40, 50)),
            Box((32, 0), (63, 31)),
        ]:
            mask = box.contains(data.coords)
            truth = data.weights[mask].sum()
            assert wav.query(box) == pytest.approx(truth)


class TestThresholding:
    def test_size_respects_budget(self):
        data = dataset_2d()
        wav = WaveletSummary(data, s=25)
        assert wav.size == 25
        assert wav.coefficients_computed > 25

    def test_total_mass_well_approximated(self):
        # The full-domain query has maximal range impact, so the
        # coefficients that matter for it are retained first.
        data = dataset_2d(n=100)
        wav = WaveletSummary(data, s=50)
        full = data.domain.full_box()
        assert wav.query(full) == pytest.approx(
            data.total_weight, rel=0.25
        )

    def test_error_decreases_with_budget(self):
        data = dataset_2d(seed=3, n=120)
        box = Box((0, 0), (31, 31))
        truth = data.weights[box.contains(data.coords)].sum()
        errors = []
        for s in (10, 100, 10**9):
            wav = WaveletSummary(data, s)
            errors.append(abs(wav.query(box) - truth))
        assert errors[2] <= errors[0] + 1e-9
        assert errors[2] < 1e-6

    def test_validation(self):
        data = dataset_1d()
        with pytest.raises(ValueError):
            WaveletSummary(data, 0)

    def test_rejects_3d(self):
        domain = ProductDomain([BitHierarchy(2)] * 3)
        data = Dataset(
            coords=np.array([[0, 0, 0]]),
            weights=np.array([1.0]),
            domain=domain,
        )
        with pytest.raises(ValueError):
            WaveletSummary(data, 5)


class TestNonPowerOfTwoDomain:
    def test_padded_domain(self):
        data = Dataset.one_dimensional([0, 5, 9], [1.0, 2.0, 3.0], size=10)
        wav = WaveletSummary(data, s=10**9)
        assert wav.query(interval(0, 9)) == pytest.approx(6.0)
        assert wav.query(interval(5, 9)) == pytest.approx(5.0)
