"""Tests for HT estimation, Poisson sampling, and tail bounds."""

import math

import numpy as np
import pytest

from repro.core.bounds import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    eps_approximation_size,
    estimate_tail_bound,
    expected_discrepancy,
    oblivious_max_discrepancy,
    product_structure_discrepancy,
)
from repro.core.estimator import SampleSummary, summary_from_inclusion
from repro.core.ipps import ipps_probabilities
from repro.core.poisson import poisson_sample, poisson_summary
from repro.core.types import Dataset
from repro.structures.ranges import Box, MultiRangeQuery, interval


class TestSampleSummary:
    def make(self):
        coords = np.array([[1], [5], [9]])
        weights = np.array([10.0, 2.0, 3.0])
        return SampleSummary(coords=coords, weights=weights, tau=4.0)

    def test_adjusted_weights(self):
        s = self.make()
        np.testing.assert_allclose(s.adjusted_weights, [10.0, 4.0, 4.0])

    def test_tau_zero_adjusted_equals_weights(self):
        s = SampleSummary(np.array([[1]]), np.array([2.0]), tau=0.0)
        np.testing.assert_allclose(s.adjusted_weights, [2.0])

    def test_estimate_total(self):
        assert self.make().estimate_total() == pytest.approx(18.0)

    def test_query_box(self):
        s = self.make()
        assert s.query(interval(0, 5)) == pytest.approx(14.0)
        assert s.query(interval(6, 20)) == pytest.approx(4.0)
        assert s.query(interval(2, 4)) == 0.0

    def test_query_multi(self):
        s = self.make()
        q = MultiRangeQuery([interval(0, 1), interval(9, 9)])
        assert s.query_multi(q) == pytest.approx(14.0)

    def test_estimate_subset_predicate(self):
        s = self.make()
        est = s.estimate_subset(lambda c: c[:, 0] % 2 == 1)
        assert est == pytest.approx(18.0)

    def test_representatives_ordering(self):
        s = self.make()
        reps = s.representatives(interval(0, 10))
        assert reps[0, 0] == 1  # heaviest adjusted weight first

    def test_representatives_k(self):
        s = self.make()
        assert s.representatives(interval(0, 10), k=2).shape == (2, 1)

    def test_sampled_count(self):
        assert self.make().sampled_count(interval(0, 5)) == 2

    def test_empty_summary(self):
        s = SampleSummary(np.empty((0, 1)), np.empty(0), tau=1.0)
        assert s.size == 0
        assert s.query(interval(0, 10)) == 0.0
        assert s.query_multi(MultiRangeQuery([interval(0, 1)])) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SampleSummary(np.array([[1], [2]]), np.array([1.0]), tau=1.0)

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            SampleSummary(np.array([[1]]), np.array([1.0]), tau=-0.5)

    def test_summary_from_inclusion(self):
        coords = np.arange(10).reshape(-1, 1)
        weights = np.ones(10)
        s = summary_from_inclusion(coords, weights, np.array([2, 4]), 1.5)
        assert s.size == 2
        assert s.coords[0, 0] == 2


class TestPoisson:
    def test_expected_size(self):
        w = 1.0 + np.random.default_rng(0).pareto(1.2, size=400)
        s = 40
        sizes = [
            poisson_sample(w, s, np.random.default_rng(t))[0].size
            for t in range(600)
        ]
        assert np.mean(sizes) == pytest.approx(s, rel=0.07)

    def test_size_varies_unlike_varopt(self):
        w = np.ones(200)
        sizes = {
            poisson_sample(w, 20, np.random.default_rng(t))[0].size
            for t in range(60)
        }
        assert len(sizes) > 1  # Poisson size is random

    def test_heavy_always_included(self):
        w = np.array([1000.0] + [1.0] * 99)
        for t in range(30):
            included, _ = poisson_sample(w, 5, np.random.default_rng(t))
            assert 0 in included

    def test_summary_unbiased_total(self, line_dataset):
        estimates = [
            poisson_summary(line_dataset, 30, np.random.default_rng(t))
            .estimate_total()
            for t in range(1500)
        ]
        assert np.mean(estimates) == pytest.approx(
            line_dataset.total_weight, rel=0.05
        )


class TestBounds:
    def test_chernoff_upper_monotone(self):
        values = [chernoff_upper_tail(10, a) for a in (11, 15, 20, 30)]
        assert values == sorted(values, reverse=True)

    def test_chernoff_upper_vacuous(self):
        assert chernoff_upper_tail(10, 9) == 1.0
        assert chernoff_upper_tail(10, 10) == 1.0

    def test_chernoff_zero_mean(self):
        assert chernoff_upper_tail(0, 1) == 0.0

    def test_chernoff_lower_monotone(self):
        values = [chernoff_lower_tail(10, a) for a in (9, 5, 2, 0)]
        assert values == sorted(values, reverse=True)

    def test_chernoff_lower_vacuous(self):
        assert chernoff_lower_tail(10, 10) == 1.0
        assert chernoff_lower_tail(10, -1) == 0.0

    def test_chernoff_matches_simulation(self):
        # Pr[Binomial(100, 0.1) >= 20] should respect the bound.
        rng = np.random.default_rng(0)
        draws = rng.binomial(100, 0.1, size=200_000)
        empirical = float((draws >= 20).mean())
        assert empirical <= chernoff_upper_tail(10.0, 20.0)

    def test_estimate_tail_bound_at_truth(self):
        assert estimate_tail_bound(100.0, 100.0, 5.0) == 1.0

    def test_estimate_tail_bound_decays(self):
        far = estimate_tail_bound(100.0, 200.0, 5.0)
        near = estimate_tail_bound(100.0, 120.0, 5.0)
        assert far < near < 1.0

    def test_estimate_tail_bound_zero_tau(self):
        assert estimate_tail_bound(100.0, 100.0, 0.0) == 1.0
        assert estimate_tail_bound(100.0, 50.0, 0.0) == 0.0

    def test_expected_discrepancy(self):
        assert expected_discrepancy(16.0) == 4.0
        assert expected_discrepancy(-1.0) == 0.0

    def test_eps_approximation_size_monotone(self):
        small = eps_approximation_size(0.1, 2, 0.01)
        smaller_eps = eps_approximation_size(0.01, 2, 0.01)
        assert smaller_eps > small

    def test_eps_approximation_validation(self):
        with pytest.raises(ValueError):
            eps_approximation_size(0.0, 2, 0.1)
        with pytest.raises(ValueError):
            eps_approximation_size(0.1, 0, 0.1)
        with pytest.raises(ValueError):
            eps_approximation_size(0.1, 2, 1.5)

    def test_oblivious_max_discrepancy(self):
        assert oblivious_max_discrepancy(1) == 1.0
        assert oblivious_max_discrepancy(100) == pytest.approx(
            math.sqrt(100 * math.log(100))
        )

    def test_product_structure_discrepancy(self):
        # d=1 gives O(1); d=2 gives 4*sqrt(s).
        assert product_structure_discrepancy(100, 1) == pytest.approx(2.0)
        assert product_structure_discrepancy(100, 2) == pytest.approx(40.0)
        with pytest.raises(ValueError):
            product_structure_discrepancy(0, 2)
