"""Distributed streaming ingest + the query-serving frontend."""

import numpy as np
import pytest

from repro.core.types import Dataset
from repro.datagen.network import (
    NetworkConfig,
    network_domain,
    stream_network_flows,
)
from repro.datagen.queries import uniform_area_queries
from repro.distributed import (
    DistributedIngest,
    QueryFrontend,
)
from repro.stream import MicroBatch, StreamEngine
from repro.structures.product import line_domain
from repro.structures.ranges import Box

CONFIG = NetworkConfig(n_pairs=6000, n_sources=1200, n_dests=900)


def flow_batches(batch_size=1000, seed=7):
    return stream_network_flows(CONFIG, seed=seed, batch_size=batch_size)


class TestDistributedIngest:
    def test_exact_folds_to_full_data(self):
        """Workers' exact slices fold back to the complete stream."""
        domain = network_domain(CONFIG)
        total = 0.0
        count = 0
        with DistributedIngest(
            domain, ["exact"], 100, num_workers=3, seed=1
        ) as fleet:
            for batch in flow_batches():
                fleet.process(batch)
                total += float(batch.weights.sum())
                count += batch.n
            assert fleet.items_dispatched == count
            folded = fleet.snapshot("exact")
            assert folded.size == count
            assert folded.total_weight() == pytest.approx(total)

    def test_sample_estimates_track_truth(self):
        domain = network_domain(CONFIG)
        with DistributedIngest(
            domain, ["obliv", "exact"], 500, num_workers=3, seed=2
        ) as fleet:
            fleet.dispatch(flow_batches())
            rng = np.random.default_rng(5)
            battery = uniform_area_queries(
                domain, 60, 3, max_fraction=0.1, rng=rng
            )
            answers = fleet.query_many_now(battery)
        exact = np.asarray(answers["exact"])
        obliv = np.asarray(answers["obliv"])
        scale = max(1.0, float(np.abs(exact).max()))
        assert float(np.abs(obliv - exact).mean()) / scale < 0.15

    def test_snapshot_cached_until_next_dispatch(self):
        domain = line_domain(256)
        with DistributedIngest(
            domain, ["exact"], 50, num_workers=2, seed=0
        ) as fleet:
            fleet.process(MicroBatch([[1], [2]], [1.0, 2.0]))
            first = fleet.snapshot("exact")
            assert fleet.snapshot("exact") is first  # same version
            fleet.process(MicroBatch([[3]], [4.0]))
            second = fleet.snapshot("exact")
            assert second is not first
            assert second.total_weight() == pytest.approx(7.0)

    def test_seed_reproducibility(self):
        domain = network_domain(CONFIG)
        taus = []
        for _ in range(2):
            with DistributedIngest(
                domain, ["obliv"], 200, num_workers=3, seed=11
            ) as fleet:
                fleet.dispatch(flow_batches())
                taus.append(fleet.snapshot("obliv").tau)
        assert taus[0] == taus[1]

    def test_unknown_method_rejected(self):
        domain = line_domain(16)
        with DistributedIngest(
            domain, ["exact"], 10, num_workers=2
        ) as fleet:
            with pytest.raises(KeyError, match="not registered"):
                fleet.snapshot("obliv")

    def test_ingest_error_surfaces_at_snapshot(self):
        """A bad batch must not silently vanish a worker's slice."""
        from repro.distributed import DistributedError

        domain = line_domain(64)
        with DistributedIngest(
            domain, ["obliv"], 10, num_workers=2, seed=0
        ) as fleet:
            fleet.process(MicroBatch([[1]], [1.0]))
            # Negative weights pass batch coercion but are rejected by
            # the reservoir inside the worker.
            fleet.process((np.asarray([[2]]), np.asarray([-1.0])))
            fleet.process(MicroBatch([[3]], [1.0]))
            with pytest.raises(DistributedError, match="ingest failed"):
                fleet.snapshot("obliv")

    def test_snapshot_tolerates_worker_death_mid_collect(self):
        """A worker dying at snapshot time shrinks the wait, not hangs."""
        from repro.distributed import Coordinator, InProcessTransport
        from repro.distributed.codec import decode_message
        from repro.distributed.worker import WorkerRuntime

        def factory(worker_id):
            runtime = WorkerRuntime()

            def handle(frame):
                if (worker_id == 1
                        and decode_message(frame)["type"] == "snapshot"):
                    raise RuntimeError("simulated death at snapshot")
                return runtime.handle_frame(frame)[0]

            return handle

        transport = InProcessTransport(handler_factory=factory)
        coordinator = Coordinator(transport, num_workers=2, timeout=30.0)
        domain = line_domain(64)
        with DistributedIngest(
            domain, ["exact"], 10, seed=0, coordinator=coordinator
        ) as fleet:
            for step in range(4):  # round-robin: two batches per worker
                fleet.process(MicroBatch([[step]], [1.0]))
            folded = fleet.snapshot("exact")
            # Worker 1's slice is lost with its death; the survivor's
            # two items still fold and serve.
            assert folded.total_weight() == pytest.approx(2.0)
            assert not transport.alive(1)
        coordinator.close()

    def test_multiprocessing_transport(self):
        domain = network_domain(CONFIG)
        try:
            fleet = DistributedIngest(
                domain, ["exact"], 100, num_workers=2,
                transport="mp", seed=3,
            )
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"process spawning unavailable: {exc}")
        with fleet:
            total = 0.0
            for batch in flow_batches(batch_size=1500):
                fleet.process(batch)
                total += float(batch.weights.sum())
            assert fleet.snapshot("exact").total_weight() == \
                pytest.approx(total)


class TestQueryFrontend:
    def _fleet(self):
        return DistributedIngest(
            network_domain(CONFIG), ["obliv", "exact"], 300,
            num_workers=2, seed=4,
        )

    def test_cache_hits_between_updates(self):
        with self._fleet() as fleet:
            fleet.dispatch(flow_batches())
            frontend = QueryFrontend(fleet, slots=4)
            battery = uniform_area_queries(
                network_domain(CONFIG), 30, 3,
                max_fraction=0.1, rng=np.random.default_rng(1),
            )
            first = frontend.query_many("exact", battery)
            again = frontend.query_many("exact", battery)
            assert first == again
            assert frontend.stats.hits == 1
            assert frontend.stats.misses == 1
            assert frontend.stats.batteries == 2
            assert frontend.stats.queries == 60

    def test_cache_invalidated_by_new_data(self):
        domain = line_domain(64)
        with DistributedIngest(
            domain, ["exact"], 20, num_workers=2, seed=0
        ) as fleet:
            frontend = QueryFrontend(fleet, slots=4)
            box = Box((0,), (63,))
            fleet.process(MicroBatch([[1]], [1.0]))
            assert frontend.query("exact", box) == pytest.approx(1.0)
            fleet.process(MicroBatch([[2]], [2.0]))
            # New version: the frontend must re-fold, not serve stale.
            assert frontend.query("exact", box) == pytest.approx(3.0)
            assert frontend.stats.misses == 2

    def test_lru_eviction(self):
        domain = line_domain(64)
        with DistributedIngest(
            domain, ["exact"], 20, num_workers=2, seed=0
        ) as fleet:
            frontend = QueryFrontend(fleet, slots=2)
            box = Box((0,), (63,))
            for step in range(4):
                fleet.process(MicroBatch([[step]], [1.0]))
                frontend.query("exact", box)
            assert frontend.stats.evictions == 2
            assert frontend.stats.misses == 4

    def test_serve_all_methods(self):
        with self._fleet() as fleet:
            fleet.dispatch(flow_batches(batch_size=2000))
            frontend = QueryFrontend(fleet)
            battery = uniform_area_queries(
                network_domain(CONFIG), 10, 3,
                max_fraction=0.1, rng=np.random.default_rng(2),
            )
            served = frontend.serve(battery)
            assert set(served) == {"obliv", "exact"}
            assert all(len(v) == 10 for v in served.values())

    def test_wraps_local_stream_engine(self):
        """The frontend serves any supplier -- including StreamEngine."""
        domain = line_domain(128)
        engine = StreamEngine(domain, "exact", 50, seed=0)
        frontend = QueryFrontend(engine)
        box = Box((0,), (127,))
        engine.process(MicroBatch([[3], [4]], [1.0, 2.0]))
        assert frontend.query("exact", box) == pytest.approx(3.0)
        engine.process(MicroBatch([[5]], [3.0]))
        assert frontend.query("exact", box) == pytest.approx(6.0)
        assert frontend.stats.misses == 2

    def test_rejects_versionless_supplier(self):
        class Bare:
            def snapshot(self, method):
                return None

        with pytest.raises(TypeError, match="version"):
            QueryFrontend(Bare()).snapshot("exact")


class TestPaneHandOff:
    def test_sealed_panes_ship_and_fold(self):
        """StreamEngine's seal hook feeds the distributed codec path."""
        from repro.distributed import codec
        from repro.engine.builder import fold_merge
        from repro.stream import tumbling

        shipped = []
        domain = line_domain(512)
        engine = StreamEngine(
            domain, "qdigest-stream", 64, window=tumbling(10.0), seed=1,
            on_pane_sealed=lambda index, snaps: shipped.append(
                (index, {m: codec.to_bytes(s) for m, s in snaps.items()})
            ),
        )
        rng = np.random.default_rng(0)
        for step in range(30):
            keys = rng.integers(0, 512, size=20).reshape(-1, 1)
            engine.process(
                MicroBatch(keys, np.ones(20), timestamp=float(step))
            )
        assert [index for index, _ in shipped] == [0, 1]
        decoded = [
            codec.from_bytes(frames["qdigest-stream"])
            for _, frames in shipped
        ]
        folded = fold_merge(decoded)
        # Two sealed panes of 10 batches x 20 unit-weight items each.
        assert folded.total == pytest.approx(400.0)
