"""The vectorized query-serving kernels match the scalar query path.

Per-method equivalence of ``query``/``query_multi`` loops against the
batched ``query_many`` kernels across >= 30 seeds (bit-exact where the
two paths share float semantics -- the dense q-digest kernel -- and
within 1e-9 relative tolerance otherwise, the documented contract for
kernels that only reorder the floating-point summation).  Also covers
the query-plan compiler (flat + padded layouts, per-object memos),
the batched dyadic decomposition, frontend micro-batching parity and
the stream engine's shared-plan battery path.
"""

import numpy as np
import pytest

from repro.core.types import Dataset
from repro.distributed.frontend import QueryFrontend
from repro.engine.registry import build
from repro.stream.engine import StreamEngine
from repro.structures.dyadic import (
    dyadic_decompose_interval,
    dyadic_decompose_intervals,
)
from repro.structures.order import OrderedDomain
from repro.structures.product import ProductDomain
from repro.structures.ranges import (
    Box,
    MultiRangeQuery,
    QueryPlan,
    SortOrderCache,
    compile_query_plan,
)
from repro.summaries.qdigest import QDigestSummary

SEEDS = range(30)

#: (method, supported dimensionalities)
METHODS = (
    ("sketch", (1, 2)),
    ("wavelet", (1, 2)),
    ("qdigest", (1, 2)),
    ("qdigest-stream", (1,)),
    ("obliv", (1, 2)),
    ("exact", (1, 2)),
)


def _dataset(rng, dims, size, n=200):
    domain = ProductDomain([OrderedDomain(size) for _ in range(dims)])
    coords = rng.integers(0, size, size=(n, dims))
    weights = 1.0 + rng.pareto(1.3, size=n)
    return Dataset(coords=coords, weights=weights, domain=domain)


def _battery(rng, dims, size, n_queries=12):
    """Mixed battery: single boxes plus one multi-range query."""
    queries = []
    for _ in range(n_queries):
        lows = rng.integers(0, size, dims)
        spans = rng.integers(0, size // 3, dims)
        highs = np.minimum(lows + spans, size - 1)
        queries.append(Box(tuple(int(v) for v in lows),
                           tuple(int(v) for v in highs)))
    third = size // 3
    queries.append(MultiRangeQuery([
        Box((0,) * dims, (third - 1,) * dims),
        Box((2 * third,) * dims, (size - 1,) * dims),
    ]))
    return queries


def _reference(summary, queries):
    return [float(summary.query_multi(query)) for query in queries]


class TestPerMethodEquivalence:
    @pytest.mark.parametrize("method,dims_supported", METHODS)
    def test_query_many_matches_scalar(self, method, dims_supported):
        for seed in SEEDS:
            rng = np.random.default_rng(1000 + seed)
            dims = dims_supported[seed % len(dims_supported)]
            size = 1 << (10 if dims == 1 else 6)
            data = _dataset(rng, dims, size)
            summary = build(method, data, 150, np.random.default_rng(seed))
            queries = _battery(rng, dims, size)
            ref = _reference(summary, queries)
            got = summary.query_many(queries)
            scale = float(data.weights.sum())
            np.testing.assert_allclose(
                got, ref, rtol=1e-9, atol=1e-9 * scale,
                err_msg=f"{method} seed {seed} dims {dims}",
            )
            # Repeated battery (cached plan / sort orders): identical.
            np.testing.assert_array_equal(summary.query_many(queries), got)

    def test_qdigest_dense_kernel_bit_exact(self):
        """The broadcasted q-digest kernel shares the scalar float ops."""
        for seed in range(10):
            rng = np.random.default_rng(seed)
            data = _dataset(rng, 2, 1 << 6, n=400)
            for mode in ("half", "uniform", "lower"):
                digest = QDigestSummary(data, 120, partial=mode)
                queries = _battery(rng, 2, 1 << 6)
                assert digest.query_many(queries) == _reference(
                    digest, queries
                )

    def test_qdigest_merged_overlapping_leaves(self):
        """Merged digests (spatially overlapping leaves) stay correct."""
        rng = np.random.default_rng(5)
        size = 1 << 10
        a = QDigestSummary(_dataset(rng, 1, size), 100)
        b = QDigestSummary(_dataset(rng, 1, size), 100)
        merged = a.merge(b)
        queries = _battery(rng, 1, size)
        assert merged._sorted_1d() is None  # overlapping: dense path
        assert merged.query_many(queries) == _reference(merged, queries)

    def test_wavelet_2d_sparse_straddle_kernel(self):
        """The packed-key 2-D straddle kernel matches scalar queries.

        Pinned across 30 seeds with dense random batteries including
        degenerate (single-cell) and full-domain boxes -- the
        straddle-candidate enumeration must cover every basis function
        a box can touch on both axes.
        """
        size = 1 << 6
        for seed in SEEDS:
            rng = np.random.default_rng(7000 + seed)
            data = _dataset(rng, 2, size, n=400)
            summary = build("wavelet", data, 150, np.random.default_rng(seed))
            queries = _battery(rng, 2, size, n_queries=30)
            queries += [
                Box((0, 0), (size - 1, size - 1)),
                Box((3, 5), (3, 5)),
                Box((0, 0), (0, size - 1)),
                Box((size // 2, 0), (size - 1, size // 2)),
            ]
            ref = _reference(summary, queries)
            got = summary.query_many(queries)
            scale = float(data.weights.sum())
            np.testing.assert_allclose(
                got, ref, rtol=1e-9, atol=1e-9 * scale,
                err_msg=f"wavelet 2-D seed {seed}",
            )
            # The per-(level_x, level_y) lookup is a one-shot memo.
            assert summary._xy_group_lookup() is summary._xy_group_lookup()

    def test_qdigest_stream_interval_table_kernel(self):
        """The sorted interval-table kernel matches scalar range sums.

        Pinned across 30 seeds with varying compression cadences (so
        the per-depth node layout differs) plus span-aligned,
        single-point, and full-domain boxes -- the prefix-sum run and
        the two endpoint-cell probes must partition every overlap.
        """
        from repro.summaries.qdigest_stream import StreamingQDigest

        bits = 12
        size = 1 << bits
        for seed in SEEDS:
            rng = np.random.default_rng(8000 + seed)
            digest = StreamingQDigest(
                bits, k=30, compress_every=101 + 13 * (seed % 5)
            )
            keys = rng.integers(0, size, size=3000)
            weights = 1.0 + rng.pareto(1.3, size=3000)
            digest.insert_many(keys, weights)
            queries = _battery(rng, 1, size, n_queries=30)
            queries += [
                Box((0,), (size - 1,)),
                Box((17,), (17,)),
                Box((size // 4,), (size // 2 - 1,)),  # span-aligned
                Box((size - 1,), (size - 1,)),
            ]
            ref = _reference(digest, queries)
            got = digest.query_many(queries)
            np.testing.assert_allclose(
                got, ref, rtol=1e-9, atol=1e-9 * digest.total,
                err_msg=f"qdigest-stream seed {seed}",
            )
            # Mutating the tree invalidates the cached table.
            table = digest._interval_table()
            assert digest._interval_table() is table
            digest.insert(0, 1.0)
            assert digest._interval_table() is not table

    def test_mismatched_dims_raise(self):
        rng = np.random.default_rng(0)
        data = _dataset(rng, 1, 1 << 8)
        queries_2d = [Box((0, 0), (3, 3))]
        for method in ("sketch", "wavelet", "qdigest"):
            summary = build(method, data, 50, np.random.default_rng(0))
            with pytest.raises(ValueError):
                summary.query_many(queries_2d)


class TestDyadicBatch:
    def test_matches_scalar_decomposition(self):
        rng = np.random.default_rng(3)
        for bits in (1, 3, 9, 16):
            domain = 1 << bits
            lows = rng.integers(0, domain, 300)
            highs = np.minimum(domain - 1, lows + rng.integers(0, domain, 300))
            depths, cells, owners = dyadic_decompose_intervals(
                lows, highs, bits
            )
            for i in (0, 17, 123, 299):
                ref = set(dyadic_decompose_interval(
                    int(lows[i]), int(highs[i]), bits
                ))
                got = set(zip(depths[owners == i].tolist(),
                              cells[owners == i].tolist()))
                assert got == ref

    def test_rejects_bad_intervals(self):
        with pytest.raises(ValueError):
            dyadic_decompose_intervals([3], [2], 4)
        with pytest.raises(ValueError):
            dyadic_decompose_intervals([0], [16], 4)


class TestQueryPlan:
    def test_flat_and_padded_layouts(self):
        single = Box((1,), (4,))
        multi = MultiRangeQuery([Box((0,), (1,)), Box((5,), (9,))])
        plan = compile_query_plan([single, multi])
        assert plan.num_boxes == 3
        np.testing.assert_array_equal(plan.counts, [1, 2])
        np.testing.assert_array_equal(plan.offsets, [0, 1])
        padded = plan.padded()
        assert padded.shape == (2, 2, 1, 2)
        np.testing.assert_array_equal(padded[0, 0], [[1, 4]])
        # Padding slot is the empty sentinel box lo=0, hi=-1.
        np.testing.assert_array_equal(padded[0, 1], [[0, -1]])
        np.testing.assert_array_equal(padded[1, 0], [[0, 1]])
        np.testing.assert_array_equal(padded[1, 1], [[5, 9]])
        np.testing.assert_array_equal(
            plan.reduce_boxes(np.array([1.0, 2.0, 3.0])), [1.0, 5.0]
        )

    def test_plan_passthrough_and_sequence(self):
        queries = [Box((0,), (3,)), Box((2,), (5,))]
        plan = compile_query_plan(queries)
        assert compile_query_plan(plan) is plan
        assert list(plan) == queries and len(plan) == 2

    def test_per_object_bounds_memo(self):
        multi = MultiRangeQuery([Box((0,), (1,)), Box((5,), (9,))])
        assert multi.stacked_bounds() is multi.stacked_bounds()
        box = Box((1,), (2,))
        assert box.stacked_bounds() is box.stacked_bounds()

    def test_sort_order_cache_plan_slot(self):
        cache = SortOrderCache()
        queries = [Box((0,), (3,))]
        plan = cache.fetch_plan(queries)
        assert cache.fetch_plan(queries) is plan  # same objects: memo hit
        assert cache.fetch_plan([Box((0,), (3,))]) is not plan
        cache.invalidate()
        assert cache.fetch_plan(queries) is not plan

    def test_empty_battery(self):
        plan = compile_query_plan([])
        assert len(plan) == 0 and plan.num_boxes == 0
        assert isinstance(plan, QueryPlan)


class _StaticSupplier:
    def __init__(self, summaries):
        self._summaries = summaries
        self.version = 0

    def snapshot(self, method):
        return self._summaries[method]

    @property
    def methods(self):
        return list(self._summaries)


class TestFrontendMicroBatching:
    @pytest.fixture
    def served(self):
        rng = np.random.default_rng(9)
        size = 1 << 10
        data = _dataset(rng, 1, size, n=500)
        summaries = {
            method: build(method, data, 120, np.random.default_rng(2))
            for method, _dims in METHODS
        }
        queries = _battery(rng, 1, size, n_queries=40)
        return summaries, queries, float(data.weights.sum())

    def test_parity_with_one_at_a_time(self, served):
        summaries, queries, scale = served
        one = QueryFrontend(_StaticSupplier(summaries))
        micro = QueryFrontend(_StaticSupplier(summaries), batch_size=16)
        for method in summaries:
            direct = [one.query(method, query) for query in queries]
            handles = [micro.submit(method, query) for query in queries]
            micro.flush()
            got = [handle.result() for handle in handles]
            np.testing.assert_allclose(
                got, direct, rtol=1e-9, atol=1e-9 * scale, err_msg=method
            )

    def test_auto_flush_at_batch_size(self, served):
        summaries, queries, _scale = served
        micro = QueryFrontend(_StaticSupplier(summaries), batch_size=4)
        handles = [micro.submit("exact", q) for q in queries[:4]]
        assert all(handle.ready for handle in handles)  # hit batch_size
        assert micro.stats.flushes == 1

    def test_lazy_flush_on_result(self, served):
        summaries, queries, _scale = served
        micro = QueryFrontend(_StaticSupplier(summaries), batch_size=64)
        handle = micro.submit("exact", queries[0])
        other = micro.submit("qdigest", queries[1])
        assert not handle.ready and not other.ready
        value = handle.result()  # forces the flush, resolving both
        assert handle.ready and other.ready
        one = QueryFrontend(_StaticSupplier(summaries))
        assert value == pytest.approx(one.query("exact", queries[0]),
                                      rel=1e-9)

    def test_interleaved_methods_one_flush(self, served):
        summaries, queries, scale = served
        micro = QueryFrontend(_StaticSupplier(summaries), batch_size=1000)
        expected = []
        handles = []
        one = QueryFrontend(_StaticSupplier(summaries))
        for i, query in enumerate(queries):
            method = ("sketch", "wavelet", "qdigest")[i % 3]
            handles.append(micro.submit(method, query))
            expected.append(one.query(method, query))
        assert micro.flush() == len(queries)
        np.testing.assert_allclose(
            [handle.result() for handle in handles], expected,
            rtol=1e-9, atol=1e-9 * scale,
        )
        assert micro.stats.flushes == 1
        assert micro.stats.submitted == len(queries)

    def test_batch_size_validation(self, served):
        summaries, _queries, _scale = served
        with pytest.raises(ValueError):
            QueryFrontend(_StaticSupplier(summaries), batch_size=0)

    def test_flush_failure_isolates_groups(self, served):
        """One group's kernel failure must not orphan the others."""
        summaries, queries, _scale = served
        micro = QueryFrontend(_StaticSupplier(summaries), batch_size=1000)
        good = micro.submit("exact", queries[0])
        bad = micro.submit("sketch", Box((0, 0), (3, 3)))  # 2-D vs 1-D
        with pytest.raises(ValueError):
            micro.flush()
        assert good.ready and bad.ready
        one = QueryFrontend(_StaticSupplier(summaries))
        assert good.result() == pytest.approx(
            one.query("exact", queries[0]), rel=1e-9
        )
        with pytest.raises(ValueError):
            bad.result()

    def test_bad_query_does_not_poison_same_method_group(self, served):
        """Per-query fallback: co-batched valid queries still answer."""
        summaries, queries, _scale = served
        micro = QueryFrontend(_StaticSupplier(summaries), batch_size=1000)
        good = micro.submit("sketch", queries[0])
        bad = micro.submit("sketch", Box((0, 0), (3, 3)))  # 2-D vs 1-D
        with pytest.raises(ValueError):
            micro.flush()
        one = QueryFrontend(_StaticSupplier(summaries))
        assert good.result() == pytest.approx(
            one.query("sketch", queries[0]), rel=1e-9
        )
        with pytest.raises(ValueError):
            bad.result()

    def test_auto_flush_never_raises_for_neighbor_failure(self, served):
        """submit() must hand back the caller's handle even when the
        auto-flush hits another group's kernel failure."""
        summaries, queries, _scale = served
        micro = QueryFrontend(_StaticSupplier(summaries), batch_size=2)
        bad = micro.submit("sketch", Box((0, 0), (3, 3)))  # 2-D vs 1-D
        good = micro.submit("exact", queries[0])  # triggers auto-flush
        assert good.ready and bad.ready
        one = QueryFrontend(_StaticSupplier(summaries))
        assert good.result() == pytest.approx(
            one.query("exact", queries[0]), rel=1e-9
        )
        with pytest.raises(ValueError):
            bad.result()


class TestStreamEngineBattery:
    def test_query_many_now_matches_query_now(self):
        rng = np.random.default_rng(4)
        size = 1 << 10
        domain = ProductDomain([OrderedDomain(size)])
        engine = StreamEngine(
            domain, ["obliv", "exact", "qdigest-stream", "sketch"],
            size=100, seed=7,
        )
        for _ in range(5):
            keys = rng.integers(0, size, size=(200, 1))
            weights = 1.0 + rng.pareto(1.3, 200)
            engine.process((keys, weights))
        queries = _battery(rng, 1, size, n_queries=25)
        batched = engine.query_many_now(queries)
        for i, query in enumerate(queries):
            per_query = engine.query_now(query)
            for method, answers in batched.items():
                assert answers[i] == pytest.approx(
                    per_query[method], rel=1e-9, abs=1e-9
                )
