"""Lemma 3: sequences of probabilistic aggregations.

Set entries stay set, aggregation is transitive (the composition of
aggregations is an aggregation), and the inclusion/exclusion product
inequalities survive arbitrary aggregation orders -- verified
statistically over many seeded runs and orders.
"""

import itertools

import numpy as np
import pytest

from repro.core.aggregation import (
    aggregate_pool,
    finalize_leftover,
    is_set,
    pair_aggregate,
)


def run_order(base, order, seed):
    p = base.copy()
    rng = np.random.default_rng(seed)
    leftover = aggregate_pool(p, list(order), rng)
    finalize_leftover(p, leftover, rng)
    return p


class TestSetEntriesStaySet:
    def test_zero_and_one_never_touched(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            p = np.array([0.0, 0.4, 1.0, 0.6, 0.5])
            aggregate_pool(p, range(5), rng)
            assert p[0] == 0.0
            assert p[2] == 1.0

    def test_entries_set_during_run_never_change(self):
        rng = np.random.default_rng(1)
        p = np.array([0.3, 0.4, 0.5, 0.6, 0.2])
        snapshots = []
        # Aggregate manually pair by pair, recording set entries.
        active = 0
        for i in range(1, 5):
            if is_set(p[active]):
                active = i
                continue
            if is_set(p[i]):
                continue
            before_set = {
                j for j in range(5) if is_set(p[j])
            }
            pair_aggregate(p, active, i, rng)
            for j in before_set:
                assert is_set(p[j])
            if is_set(p[active]) and not is_set(p[i]):
                active = i


class TestTransitivity:
    """Composing aggregations preserves the aggregation axioms."""

    def test_expectations_preserved_any_order(self):
        base = np.array([0.25, 0.65, 0.35, 0.45, 0.3])  # sum = 2.0
        trials = 4000
        for order in ([0, 1, 2, 3, 4], [4, 2, 0, 3, 1], [2, 0, 4, 1, 3]):
            sums = np.zeros(5)
            for t in range(trials):
                sums += run_order(base, order, t)
            np.testing.assert_allclose(sums / trials, base, atol=0.03)

    def test_sample_size_invariant_across_orders(self):
        base = np.array([0.25, 0.65, 0.35, 0.45, 0.3])
        for order in itertools.permutations(range(5)):
            p = run_order(base, order, seed=hash(order) % 2**31)
            assert int(round(p.sum())) == 2

    def test_exclusion_inequality_after_long_sequence(self):
        # E[prod (1 - p_i')] <= prod (1 - p_i) for the pair {0, 1}
        # after aggregating a 6-entry pool.
        base = np.array([0.3, 0.4, 0.5, 0.3, 0.3, 0.2])
        trials = 30_000
        prod_sum = 0.0
        for t in range(trials):
            p = run_order(base, range(6), t)
            prod_sum += (1 - p[0]) * (1 - p[1])
        bound = (1 - base[0]) * (1 - base[1])
        assert prod_sum / trials <= bound + 0.01

    def test_inclusion_inequality_after_long_sequence(self):
        base = np.array([0.3, 0.4, 0.5, 0.3, 0.3, 0.2])
        trials = 30_000
        prod_sum = 0.0
        for t in range(trials):
            p = run_order(base, range(6), t)
            prod_sum += p[2] * p[3]
        bound = base[2] * base[3]
        assert prod_sum / trials <= bound + 0.01

    def test_negative_pairwise_covariance(self):
        # VarOpt inclusions are negatively correlated: Cov(X_i, X_j) <= 0
        # for every pair (this is the (I) inequality for |J| = 2).
        base = np.array([0.5, 0.5, 0.5, 0.5])  # sum = 2
        trials = 30_000
        joint = np.zeros((4, 4))
        marginal = np.zeros(4)
        for t in range(trials):
            p = run_order(base, range(4), t)
            included = p >= 1.0 - 1e-9
            marginal += included
            joint += np.outer(included, included)
        marginal /= trials
        joint /= trials
        for i in range(4):
            for j in range(4):
                if i != j:
                    cov = joint[i, j] - marginal[i] * marginal[j]
                    assert cov <= 0.01


class TestDegenerateSequences:
    def test_pool_of_identical_halves(self):
        rng = np.random.default_rng(9)
        p = np.full(2, 0.5)
        leftover = aggregate_pool(p, [0, 1], rng)
        assert leftover is None
        assert sorted(p.tolist()) == [0.0, 1.0]

    def test_probabilities_summing_just_below_one(self):
        rng = np.random.default_rng(10)
        p = np.array([0.4, 0.4])
        leftover = aggregate_pool(p, [0, 1], rng)
        assert leftover is not None
        assert p[leftover] == pytest.approx(0.8)

    def test_long_chain_numerical_stability(self):
        # 10k tiny probabilities summing to 25: mass must be conserved
        # to high precision through ~10k float pair aggregations.
        rng = np.random.default_rng(11)
        p = np.full(10_000, 0.0025)
        total_before = p.sum()
        leftover = aggregate_pool(p, range(10_000), rng)
        finalize_leftover(p, leftover, rng)
        count = int(p.sum())
        assert abs(count - total_before) <= 1.0
